module Vec = Mcd_util.Vec
module Walker = Mcd_isa.Walker

type kind =
  | Root
  | Func_node of { fid : int; site : int }
  | Loop_node of { loop_id : int }

type node = {
  id : int;
  kind : kind;
  parent : int;
  depth : int;
  mutable children : (kind * int) list;
  mutable instances : int;
  mutable total_insts : int;
  mutable long : bool;
  mutable reaches_long : bool;
}

type t = {
  ctx : Context.t;
  nodes : node Vec.t;
  threshold : int;
  mutable profiled : int;
}

let default_threshold = 10_000

let context t = t.ctx
let root _ = 0
let node t id = Vec.get t.nodes id
let size t = Vec.length t.nodes
let instructions_profiled t = t.profiled

let child t id kind = List.assoc_opt kind (Vec.get t.nodes id).children

let iter t ~f = Vec.iter f t.nodes

let new_node t ~kind ~parent =
  let depth = if parent < 0 then 0 else (node t parent).depth + 1 in
  let n =
    {
      id = Vec.length t.nodes;
      kind;
      parent;
      depth;
      children = [];
      instances = 0;
      total_insts = 0;
      long = false;
      reaches_long = false;
    }
  in
  Vec.push t.nodes n;
  if parent >= 0 then begin
    let p = node t parent in
    p.children <- p.children @ [ (kind, n.id) ]
  end;
  n.id

(* --- construction ------------------------------------------------- *)

type frame = { node_id : int; folded : bool; entry_pos : int; is_loop : bool }

let fid_on_stack stack t fid =
  List.exists
    (fun fr ->
      match (node t fr.node_id).kind with
      | Func_node { fid = f; _ } -> f = fid
      | Root | Loop_node _ -> false)
    stack

let build program ~input ~context ?(threshold = default_threshold) ~max_insts
    () =
  let ctx = Context.tree_context context in
  let t = { ctx; nodes = Vec.create (); threshold; profiled = 0 } in
  let root_id = new_node t ~kind:Root ~parent:(-1) in
  (node t root_id).instances <- 1;
  let walker = Walker.create program ~input in
  let stack = ref [ { node_id = root_id; folded = false; entry_pos = 0; is_loop = false } ] in
  let pos = ref 0 in
  let top () =
    match !stack with
    | fr :: _ -> fr
    | [] -> assert false
  in
  let enter ~kind ~folded ~is_loop =
    let parent = (top ()).node_id in
    let node_id =
      if folded then
        (* recursion: reuse the ancestor's node *)
        let rec find = function
          | [] -> assert false
          | fr :: rest -> (
              match ((node t fr.node_id).kind, kind) with
              | Func_node { fid = f1; _ }, Func_node { fid = f2; _ }
                when f1 = f2 ->
                  fr.node_id
              | (Root | Func_node _ | Loop_node _), _ -> find rest)
        in
        find !stack
      else
        match child t parent kind with
        | Some id -> id
        | None -> new_node t ~kind ~parent
    in
    if not folded then begin
      let n = node t node_id in
      n.instances <- n.instances + 1
    end;
    stack := { node_id; folded; entry_pos = !pos; is_loop } :: !stack
  in
  let exit_frame () =
    match !stack with
    | [] | [ _ ] -> () (* never pop the root *)
    | fr :: rest ->
        stack := rest;
        if not fr.folded then begin
          let n = node t fr.node_id in
          n.total_insts <- n.total_insts + (!pos - fr.entry_pos)
        end
  in
  let continue_ = ref true in
  while !continue_ && !pos < max_insts do
    match Walker.next walker with
    | None -> continue_ := false
    | Some (Walker.Inst _) -> incr pos
    | Some (Walker.Marker m) -> (
        match m with
        | Walker.Enter_func { fid; site_id } ->
            let site =
              if ctx.Context.sites then Option.value site_id ~default:(-1)
              else -1
            in
            let folded = fid_on_stack !stack t fid in
            enter ~kind:(Func_node { fid; site }) ~folded ~is_loop:false
        | Walker.Exit_func _ -> exit_frame ()
        | Walker.Enter_loop { loop_id } ->
            if ctx.Context.loops then
              enter ~kind:(Loop_node { loop_id }) ~folded:false ~is_loop:true
        | Walker.Exit_loop _ -> if ctx.Context.loops then exit_frame ())
  done;
  (* close instances still open at the end of the window *)
  List.iter
    (fun fr ->
      if not fr.folded then begin
        let n = node t fr.node_id in
        n.total_insts <- n.total_insts + (!pos - fr.entry_pos)
      end)
    !stack;
  t.profiled <- !pos;
  (* mark long-running nodes, leaves first: a node is long when its
     average instance, excluding instructions covered by long-running
     descendants, meets the threshold *)
  let rec covered id =
    let n = node t id in
    List.fold_left
      (fun acc (_, cid) ->
        let c = node t cid in
        acc + if c.long then c.total_insts else covered cid)
      0 n.children
  in
  let rec mark id =
    let n = node t id in
    List.iter (fun (_, cid) -> mark cid) n.children;
    match n.kind with
    | Root -> ()
    | Func_node _ | Loop_node _ ->
        let own = n.total_insts - covered id in
        if n.instances > 0 && own / n.instances >= t.threshold then
          n.long <- true
  in
  mark root_id;
  let rec mark_reaches id =
    let n = node t id in
    List.iter (fun (_, cid) -> mark_reaches cid) n.children;
    n.reaches_long <-
      n.long
      || List.exists (fun (_, cid) -> (node t cid).reaches_long) n.children
  in
  mark_reaches root_id;
  t

(* --- queries ------------------------------------------------------ *)

let long_nodes t =
  Vec.fold_left (fun acc n -> if n.long then n :: acc else acc) [] t.nodes
  |> List.rev

let long_count t = List.length (long_nodes t)

type static_unit = Func_unit of int | Loop_unit of int

let static_unit_of = function
  | Root -> None
  | Func_node { fid; _ } -> Some (Func_unit fid)
  | Loop_node { loop_id } -> Some (Loop_unit loop_id)

let distinct_units nodes =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun n ->
      match static_unit_of n.kind with
      | None -> ()
      | Some u ->
          if not (Hashtbl.mem tbl u) then begin
            Hashtbl.add tbl u ();
            order := u :: !order
          end)
    nodes;
  List.rev !order

let long_static_units t = distinct_units (long_nodes t)

let instrumented_static_units t =
  let reaching =
    Vec.fold_left (fun acc n -> if n.reaches_long then n :: acc else acc) []
      t.nodes
    |> List.rev
  in
  distinct_units reaching

let pp_kind fmt = function
  | Root -> Format.pp_print_string fmt "<root>"
  | Func_node { fid; site } ->
      if site >= 0 then Format.fprintf fmt "func:%d@@site:%d" fid site
      else Format.fprintf fmt "func:%d" fid
  | Loop_node { loop_id } -> Format.fprintf fmt "loop:%d" loop_id

let to_dot t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph call_tree {\n  node [shape=box];\n";
  Vec.iter
    (fun n ->
      let label =
        match n.kind with
        | Root -> "root"
        | Func_node { fid; site } ->
            if site >= 0 then Printf.sprintf "func %d (site %d)" fid site
            else Printf.sprintf "func %d" fid
        | Loop_node { loop_id } -> Printf.sprintf "loop %d" loop_id
      in
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"%s\\n%d inst / %d insns\"%s];\n" n.id
           label n.instances n.total_insts
           (if n.long then " style=filled fillcolor=gray80" else ""));
      if n.parent >= 0 then
        Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" n.parent n.id))
    t.nodes;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let pp fmt t =
  let rec go id =
    let n = node t id in
    Format.fprintf fmt "%s%a  inst=%d total=%d%s@,"
      (String.make (2 * n.depth) ' ')
      pp_kind n.kind n.instances n.total_insts
      (if n.long then "  [long]" else "");
    List.iter (fun (_, cid) -> go cid) n.children
  in
  Format.fprintf fmt "@[<v>";
  go 0;
  Format.fprintf fmt "@]"
