(** Seeded, canonical, digest-stable workload specifications.

    A spec is a small record of behaviour knobs from which a complete
    {!Mcd_isa.Program.t} (and its {!Mcd_workloads.Workload.t} wrapper)
    is generated deterministically: same spec, same bytes, in any
    process and under any [Mcd_util.Par] jobs count. The generated
    program is a pure function of the spec — every random stream is
    split from [seed] with fixed labels — so {!Mcd_cache.Key} content
    addressing, serve-side dedup, and {!Mcd_cpu.Sampler} signature
    matching all keep working on generated workloads exactly as they do
    on the hand-built suite.

    The knobs mirror the behavioural axes the paper's benchmark
    selection spans: phase structure (count and loop-nest depth),
    instruction mix, working-set size, branch predictability, loop trip
    spread, and how far the reference input strays from paths the
    training input exercised. *)

type t = {
  seed : int;  (** master seed; all generation streams derive from it *)
  phases : int;  (** top-level phase functions, 1..16 *)
  depth : int;  (** max loop-nest depth within a phase, 1..8 *)
  fp_mix : float;  (** probability a phase is floating-point flavoured, 0..1 *)
  ws_kb : int;  (** nominal working-set size per block, KB, 1..8192 *)
  branch_entropy : float;
      (** 0 = predictable branches, 1 = near-coin-flip, 0..1 *)
  iter_spread : float;
      (** log-normal sigma on loop trip counts; 0 = uniform nests, up
          to 4 *)
  divergence : float;
      (** reference-input path divergence handed to [Choose] nodes, 0..1 *)
  train_insts : int;  (** training-run instruction window *)
  ref_insts : int;  (** reference-run instruction window *)
}

val default : t

val validate : t -> (unit, string) result
(** Range-check every knob; [Error reason] names the offending field. *)

val canonical : t -> string
(** Single-line rendering with every field in a fixed order and floats
    in lossless [%h] form — the content identity {!digest} hashes. *)

val digest : t -> string
(** MD5 hex of {!canonical}. *)

val name : t -> string
(** ["gen-" ^ 12 hex chars of [digest]] — the workload name, stable
    across processes. {!Mcd_workloads.Workload.make} derives the
    train/ref input seeds from this name, so the full workload is
    digest-stable too. *)

val summary : t -> string
(** Human-oriented one-liner of the knob values. *)

val to_json : t -> Mcd_obs.Json.t
(** Replayable rendering, schema ["mcd-gen-spec/1"]. *)

val of_json : Mcd_obs.Json.t -> (t, string) result
(** Inverse of {!to_json}; validates before returning. *)

val draw :
  ?train_insts:int -> ?ref_insts:int -> seed:int -> unit -> t
(** Draw a spec from the campaign distribution: every knob sampled from
    a stream derived from [seed] (the drawn spec's [seed] field is
    [seed] itself). Windows default to 12_000/30_000 — small enough
    that property campaigns stay bounded. *)

val program : t -> Mcd_isa.Program.t
(** Generate the program: per-phase loop nests with drawn instruction
    mixes and memory/branch patterns, an [Arg_scaled] shared kernel when
    there are at least two phases, occasional zero-trip loops (the
    walker must skip them cleanly), and [Choose] nodes whose taken
    probability tracks the input's divergence knob. Validated before
    being returned; deterministic per spec. *)

val workload : t -> Mcd_workloads.Workload.t
(** Wrap {!program} as a suite workload (kind {!Mcd_workloads.Workload.Generated}):
    train input diverges 0, reference diverges by [divergence], windows
    from the spec. Register it with [Mcd_workloads.Suite.register] to
    make it runnable by name. *)

val shrink : t -> t list
(** Shrink candidates, most aggressive first: fewer phases, shallower
    nests, smaller working sets, knob floats toward 0. The seed is
    never shrunk (it is identity, not size). Every candidate
    validates. *)
