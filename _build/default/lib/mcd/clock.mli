(** A domain clock: a stream of edges whose spacing follows the domain's
    instantaneous DVFS frequency, perturbed by normally distributed
    jitter.

    The simulator's main loop advances to the earliest pending edge among
    domain clocks and runs that domain's work. Edge times are strictly
    increasing. *)

type t

val create :
  ?jitter_sigma_ps:float ->
  rng:Mcd_util.Rng.t ->
  freq_mhz:(now:Mcd_util.Time.t -> float) ->
  unit ->
  t
(** [freq_mhz] supplies the instantaneous frequency (typically a closure
    over {!Dvfs}). Jitter defaults to the paper's 110 ps bound, modelled
    as a normal with sigma = 110/3 ps clamped to the bound. *)

val next_edge : t -> Mcd_util.Time.t
(** Time of the next pending edge. *)

val advance : t -> unit
(** Consume the pending edge and schedule the following one at the
    current frequency plus jitter. *)

val cycles : t -> int
(** Number of edges consumed so far. *)

val period_ps : t -> now:Mcd_util.Time.t -> int
(** Nominal period at the instantaneous frequency. *)

val project_edge : t -> at_or_after:Mcd_util.Time.t -> Mcd_util.Time.t
(** First edge at or after the given time, projected with the current
    period and no jitter (used by the synchronization model and by
    cross-domain latency estimates). Times in the past are projected on
    the backward extension of the current edge grid. *)
