(** The multiple-clock-domain out-of-order pipeline.

    Executes a program's dynamic instruction stream on the Table-1 core:
    fetch (with the combining branch predictor and L1 I-cache) and
    rename/dispatch in the front-end domain, issue/execute in the
    integer and floating-point domains, loads and stores through the
    LSQ / L1D / L2 hierarchy in the memory domain, and in-order retire
    back in the front-end. Each domain runs on its own jittered clock;
    every value that crosses a domain boundary pays the synchronization
    cost of {!Mcd_domains.Sync}. Energy is accounted per activity at the
    producing domain's instantaneous voltage.

    A {!Controller.t} supplies the run-time reconfiguration policy; a
    {!Probe.t} (profiling runs) receives every primitive event for
    dependence-DAG construction; an {!Mcd_obs.Sink.t} (tracing runs)
    receives structured events (reconfigurations, DVFS retargets, sync
    penalties, controller decisions) and interval samples of the
    per-domain frequency/voltage/occupancy/energy signals. With no sink
    the observability code is a single [None] branch per site. *)

val run :
  ?probe:Probe.t ->
  ?controller:Controller.t ->
  ?sink:Mcd_obs.Sink.t ->
  ?sampling:Sampler.params ->
  ?sampler_report:Sampler.report option ref ->
  ?warmup_insts:int ->
  ?dvfs_faults:Mcd_domains.Dvfs.fault list ->
  config:Config.t ->
  program:Mcd_isa.Program.t ->
  input:Mcd_isa.Program.input ->
  max_insts:int ->
  unit ->
  Mcd_power.Metrics.run
(** Simulate until [max_insts] instructions retire past the warm-up, or
    the program ends. [warmup_insts] (default 0) retires that many
    instructions first with full microarchitectural effect — caches,
    predictors, DVFS state and the controller all run — then resets the
    measured statistics (energy, runtime, counters), mirroring the
    paper's mid-program instruction windows. [sampling] (default off:
    exact cycle-level simulation) enables {!Sampler} phase sampling:
    repeated stable phase instances are simulated once per
    (node, frequency-vector) signature and the rest fast-forwarded,
    their metrics extrapolated from the recorded representative — a
    large speedup on phase-structured workloads at a small, test-bounded
    metric drift. [sampler_report] (when sampling is on) receives the
    sampler's end-of-run counters — recorded/skipped instances,
    swallowed instructions, unstable signatures — for tests and
    diagnostics. [dvfs_faults] (default none) injects hardware faults
    into the clock/voltage system before the first cycle — the
    robustness harness's hook. Raises [Failure] if the pipeline
    deadlocks (a simulator bug). *)
