module Rng = Mcd_util.Rng
module Domain = Mcd_domains.Domain
module Freq = Mcd_domains.Freq
module Dvfs = Mcd_domains.Dvfs
module Controller = Mcd_cpu.Controller

type file_fault =
  | Truncate
  | Bit_flip
  | Mutate_frequency
  | Stale_fingerprint
  | Drop_lines

type runtime_fault = Stuck_domain | Lost_writes | Frozen_slew

type serve_fault =
  | Worker_crash
  | Torn_journal
  | Socket_drop
  | Delayed_completion

type fault =
  | File of file_fault
  | Runtime of runtime_fault
  | Serve of serve_fault

let all =
  [
    File Truncate;
    File Bit_flip;
    File Mutate_frequency;
    File Stale_fingerprint;
    File Drop_lines;
    Runtime Stuck_domain;
    Runtime Lost_writes;
    Runtime Frozen_slew;
  ]

let serve_all =
  [
    Serve Worker_crash;
    Serve Torn_journal;
    Serve Socket_drop;
    Serve Delayed_completion;
  ]

let name = function
  | File Truncate -> "truncate"
  | File Bit_flip -> "bit-flip"
  | File Mutate_frequency -> "mutate-frequency"
  | File Stale_fingerprint -> "stale-fingerprint"
  | File Drop_lines -> "drop-lines"
  | Runtime Stuck_domain -> "stuck-domain"
  | Runtime Lost_writes -> "lost-writes"
  | Runtime Frozen_slew -> "frozen-slew"
  | Serve Worker_crash -> "worker-crash"
  | Serve Torn_journal -> "torn-journal"
  | Serve Socket_drop -> "socket-drop"
  | Serve Delayed_completion -> "delayed-completion"

let names = List.map name (all @ serve_all)
let of_name s = List.find_opt (fun f -> name f = s) (all @ serve_all)

(* --- artifact corruption --------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc s)

let bit_flip ~rng s =
  if String.length s = 0 then s
  else begin
    let b = Bytes.of_string s in
    let i = Rng.int rng (Bytes.length b) in
    let bit = Rng.int rng 8 in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl bit)));
    Bytes.to_string b
  end

(* Lines of the file body, excluding a trailing empty fragment. *)
let lines_of s =
  match List.rev (String.split_on_char '\n' s) with
  | "" :: rest -> List.rev rest
  | all -> List.rev all

let unlines ls = String.concat "\n" ls ^ "\n"

(* Corrupt values a frequency field can be rewritten to: out of range
   (which validation must refuse) and in-range but off the legal grid
   (which validation must snap with a diagnostic). *)
let corrupt_frequencies = [| 0; -17; 999999; 313; 1; 421 |]

let mutate_frequency ~rng lines =
  let is_setting l =
    String.length l > 5
    && (String.sub l 0 5 = "node " || String.sub l 0 5 = "unit ")
  in
  let candidates = List.filteri (fun _ l -> is_setting l) lines in
  match candidates with
  | [] -> None
  | _ ->
      let victim = Rng.int rng (List.length candidates) in
      let seen = ref (-1) in
      Some
        (List.map
           (fun l ->
             if is_setting l then begin
               incr seen;
               if !seen = victim then begin
                 match String.rindex_opt l ' ' with
                 | None -> l
                 | Some sp ->
                     let prefix = String.sub l 0 (sp + 1) in
                     let fields =
                       String.split_on_char ','
                         (String.sub l (sp + 1) (String.length l - sp - 1))
                     in
                     let k = Rng.int rng (List.length fields) in
                     let bad =
                       corrupt_frequencies.(Rng.int rng
                                              (Array.length corrupt_frequencies))
                     in
                     prefix
                     ^ String.concat ","
                         (List.mapi
                            (fun i f -> if i = k then string_of_int bad else f)
                            fields)
               end
               else l
             end
             else l)
           lines)

let stale_fingerprint ~rng lines =
  let fresh =
    String.init 16 (fun _ -> "0123456789abcdef".[Rng.int rng 16])
  in
  let hit = ref false in
  let lines =
    List.map
      (fun l ->
        if String.length l > 5 && String.sub l 0 5 = "tree " then begin
          hit := true;
          "tree " ^ fresh
        end
        else l)
      lines
  in
  if !hit then Some lines else None

let drop_lines ~rng lines =
  match lines with
  | [] | [ _ ] -> None
  | header :: body ->
      let n = List.length body in
      let drops = 1 + Rng.int rng (min 3 n) in
      let victims =
        List.init drops (fun _ -> Rng.int rng n) |> List.sort_uniq compare
      in
      Some (header :: List.filteri (fun i _ -> not (List.mem i victims)) body)

let corrupt_file fault ~rng ~path =
  let original = read_file path in
  let corrupted =
    match fault with
    | Truncate ->
        let len = String.length original in
        let keep = (len / 4) + Rng.int rng (max 1 (len / 2)) in
        String.sub original 0 (min keep len)
    | Bit_flip -> bit_flip ~rng original
    | Mutate_frequency -> (
        match mutate_frequency ~rng (lines_of original) with
        | Some lines -> unlines lines
        | None -> bit_flip ~rng original)
    | Stale_fingerprint -> (
        match stale_fingerprint ~rng (lines_of original) with
        | Some lines -> unlines lines
        | None -> bit_flip ~rng original)
    | Drop_lines -> (
        match drop_lines ~rng (lines_of original) with
        | Some lines -> unlines lines
        | None -> bit_flip ~rng original)
  in
  let corrupted =
    if corrupted = original then bit_flip ~rng original else corrupted
  in
  write_file path corrupted

(* --- runtime faults --------------------------------------------------- *)

let dvfs_faults fault ~rng =
  match fault with
  | Stuck_domain ->
      let domain = Domain.of_index (Rng.int rng Domain.count) in
      let mhz = Freq.steps.(Rng.int rng Freq.num_steps) in
      [ Dvfs.Stuck_at (domain, mhz) ]
  | Frozen_slew ->
      [ Dvfs.Frozen_slew (Domain.of_index (Rng.int rng Domain.count)) ]
  | Lost_writes -> []

(* --- serve faults ------------------------------------------------------ *)

(* A worker crash is modelled as whole-process death, not an exception:
   a raising compute would fail the job *terminally* (answered typed,
   journal record written), whereas a killed process leaves the job
   incomplete in the journal — exactly the case replay exists for. Exit
   code 9 mirrors the SIGKILL the chaos harness also delivers. *)
let crash_compute ?(after_s = 0.0) () _req =
  if after_s > 0.0 then Unix.sleepf after_s;
  Unix._exit 9

let delay_compute ~rng ~max_delay_s compute req =
  Unix.sleepf (Rng.float rng max_delay_s);
  compute req

(* A crash mid-append leaves a prefix of the record on disk; tearing
   cuts a random short tail so recovery must classify it as torn (good
   prefix kept, no typed corruption). *)
let tear_file ~rng ~path =
  let original = read_file path in
  let len = String.length original in
  if len > 0 then begin
    let cut = 1 + Rng.int rng (min 80 len) in
    write_file path (String.sub original 0 (len - cut))
  end

let lost_write_probability = 0.5

let harness fault ~rng inner =
  match fault with
  | Stuck_domain | Frozen_slew -> inner
  | Lost_writes ->
      let drop set =
        match set with
        | Some _ when Rng.bool rng lost_write_probability -> None
        | other -> other
      in
      {
        Controller.name = inner.Controller.name ^ "+lost-writes";
        on_marker =
          (fun m ~now ->
            let r = inner.Controller.on_marker m ~now in
            { r with Controller.set = drop r.Controller.set });
        on_sample = (fun s ~now -> drop (inner.Controller.on_sample s ~now));
        sample_interval_cycles = inner.Controller.sample_interval_cycles;
      }
