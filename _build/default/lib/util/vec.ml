type 'a t = { mutable data : 'a array; mutable len : int }

let create () = { data = [||]; len = 0 }
let length t = t.len

let grow t v =
  let cap = Array.length t.data in
  let ncap = max 8 (cap * 2) in
  let ndata = Array.make ncap v in
  Array.blit t.data 0 ndata 0 t.len;
  t.data <- ndata

let push t v =
  if t.len >= Array.length t.data then grow t v;
  t.data.(t.len) <- v;
  t.len <- t.len + 1

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Vec.get: index out of bounds";
  t.data.(i)

let set t i v =
  if i < 0 || i >= t.len then invalid_arg "Vec.set: index out of bounds";
  t.data.(i) <- v

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.data.(i)
  done

let fold_left f init t =
  let acc = ref init in
  for i = 0 to t.len - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let to_list t = List.init t.len (fun i -> t.data.(i))

let of_list l =
  let t = create () in
  List.iter (push t) l;
  t

let clear t = t.len <- 0
