(** The interval-based off-line oracle (the paper's "off-line" bars,
    after its reference [30]).

    Unlike profile-driven reconfiguration, the oracle ignores program
    structure: it divides the production run into fixed instruction
    intervals, analyses each interval's dependence DAG with perfect
    knowledge (shaker + slowdown thresholding + critical-path
    validation), and plays the resulting per-interval schedule back
    during the measured run, reconfiguring at interval boundaries. *)

type interval_data = {
  histograms : Mcd_util.Histogram.t array option;
      (** [None] when the interval retired too few events to analyse *)
  paths : Path_model.t;
  duration_ps : float;
}

type analysis = { interval_insts : int; intervals : interval_data array }
(** Retained per-interval shaker output (histograms, path models,
    durations), so schedules at different slowdown budgets are cheap.
    Exposed concretely so the result cache can serialize it. *)

val default_interval_insts : int
(** The [interval_insts] default used by {!analyze} (10_000); exported so
    cache keys can name the effective interval size explicitly. *)

val encode_analysis : analysis -> string
(** Canonical text rendering (floats in lossless [%h] form, [end]
    trailer); [decode_analysis] inverts it bit for bit. *)

val decode_analysis : string -> (analysis, string) result
(** Parse an {!encode_analysis} payload. Any malformation — bad header,
    truncation, field mismatch — yields [Error reason]; never raises. *)

val analyze :
  program:Mcd_isa.Program.t ->
  input:Mcd_isa.Program.input ->
  ?interval_insts:int ->
  ?trace_insts:int ->
  ?config:Mcd_cpu.Config.t ->
  unit ->
  analysis
(** Run the input at full speed and analyse each interval. Defaults:
    10_000-instruction intervals, 120_000 traced instructions. For a
    production run with a warm-up, trace warm-up plus window (instruction
    numbering counts from the start of the run). *)

type schedule = {
  interval_insts : int;
  settings : Mcd_domains.Reconfig.setting array;  (** per interval *)
}

val schedule_of : analysis -> slowdown_pct:float -> schedule
(** Threshold + critical-path validation per interval, then
    transition-aware swing clamping across the schedule (consecutive
    intervals are exactly the back-to-back phases that ramp into each
    other). *)

val policy : schedule -> Mcd_cpu.Controller.t
(** Play the schedule back: at each sampling point the controller writes
    the setting of the interval containing the current instruction.
    Instructions beyond the schedule run at the last setting. *)
