(** The shaker algorithm (Section 3.2 of the paper).

    Given the dependence DAG of a long-running node, the shaker stretches
    individual events that are off the critical path, as if each could
    run at its own lower frequency, distributing the DAG's slack as
    uniformly as possible. It alternates backward and forward passes
    over the DAG with a decaying power threshold: events whose power
    factor exceeds the threshold are scaled (their power factor falls
    with the frequency/voltage operating point) until they consume the
    adjacent slack, reach the threshold, or hit one quarter of full
    frequency; leftover slack is shifted across the event to its other
    edges for earlier (or later) events to consume.

    The output is, per clock domain, a histogram of event work (in
    full-speed cycles) by the frequency step each event was scaled to —
    the input to slowdown thresholding. *)

type result = {
  histograms : Mcd_util.Histogram.t array;
      (** per {!Mcd_domains.Domain.index}; bins are
          {!Mcd_domains.Freq.steps} indices, weights full-speed cycles *)
  passes : int;  (** backward+forward pass pairs executed *)
  stretched_events : int;  (** events scaled below full frequency *)
  total_events : int;
}

val run :
  ?max_passes:int ->
  ?threshold_decay:float ->
  Dag.t ->
  result
(** Defaults: 24 pass pairs, threshold decay 0.85 per pair. The DAG is
    not modified (the shaker works on copies of the schedule). *)

val frequencies_of_durations :
  orig:float array -> stretched:float array -> int array
(** For testing: the frequency step (MHz) implied by each stretched
    duration, snapped down to a legal step. *)
