examples/ship_plan.ml: Filename Mcd_core Mcd_cpu Mcd_power Mcd_profiling Mcd_workloads Printf Sys Unix
