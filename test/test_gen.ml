(* Tests for the generative workload fabric: seeded specs, digest
   stability (including under parallel generation), JSON replay,
   shrinking, and the DVS assertion layer. *)

module Spec = Mcd_gen.Spec
module Gassert = Mcd_gen.Assert
module P = Mcd_isa.Program
module Walker = Mcd_isa.Walker
module W = Mcd_workloads.Workload
module Suite = Mcd_workloads.Suite
module Key = Mcd_cache.Key
module Par = Mcd_util.Par
module Metrics = Mcd_power.Metrics
module Json = Mcd_obs.Json

let qcheck ?(seed = 0xd1f5) t =
  QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| seed |]) t

let golden_spec = { Spec.default with Spec.seed = 42 }

(* Pinned from a reference run. A change here means generated program
   bytes moved — and with them every cache key, dedup decision, and
   stored counterexample built on spec digests. Deliberate generator
   changes must bump these goldens knowingly. *)
let golden_name = "gen-79d3d9067f38"
let golden_canonical_md5 = "93196e01df77367c845e9ca88139fbbd"
let golden_key_digest = "5f374d850b5dace6a62466d50114bf01"

let canonical_of spec =
  let w = Spec.workload spec in
  P.canonical w.W.program ~input:w.W.reference

let key_digest_of spec =
  let w = Spec.workload spec in
  Key.digest
    (Key.make ~kind:"golden"
       ~parts:
         (Key.program_fragment w.W.program ~input:w.W.reference
         @ Key.input_fragment w.W.reference))

(* --- digest stability ------------------------------------------------- *)

let test_golden_digests () =
  Alcotest.(check string) "workload name" golden_name
    (Spec.workload golden_spec).W.name;
  Alcotest.(check string) "canonical program digest" golden_canonical_md5
    (Digest.to_hex (Digest.string (canonical_of golden_spec)));
  Alcotest.(check string) "cache key digest" golden_key_digest
    (key_digest_of golden_spec)

let test_regeneration_byte_identical () =
  Alcotest.(check string) "canonical bytes" (canonical_of golden_spec)
    (canonical_of golden_spec);
  let w1 = Spec.workload golden_spec and w2 = Spec.workload golden_spec in
  Alcotest.(check string) "name" w1.W.name w2.W.name;
  Alcotest.(check bool) "train inputs equal" true (w1.W.train = w2.W.train);
  Alcotest.(check bool) "reference inputs equal" true
    (w1.W.reference = w2.W.reference)

let test_parallel_generation_byte_identical () =
  let seq = Digest.to_hex (Digest.string (canonical_of golden_spec)) in
  let key = key_digest_of golden_spec in
  Par.map ~jobs:4
    (fun s -> (Digest.to_hex (Digest.string (canonical_of s)), key_digest_of s))
    [ golden_spec; golden_spec; golden_spec; golden_spec ]
  |> List.iteri (fun i (d, k) ->
         Alcotest.(check string) (Printf.sprintf "worker %d canonical" i) seq d;
         Alcotest.(check string) (Printf.sprintf "worker %d key" i) key k)

let test_name_is_digest_prefix () =
  let s = Spec.draw ~seed:123 () in
  Alcotest.(check string) "name = gen- + 12 digest chars"
    ("gen-" ^ String.sub (Spec.digest s) 0 12)
    (Spec.name s)

(* --- spec codec and validation ---------------------------------------- *)

let test_json_roundtrip () =
  List.iter
    (fun s ->
      match Spec.of_json (Spec.to_json s) with
      | Ok s' ->
          Alcotest.(check bool) ("roundtrip " ^ Spec.name s) true (s = s')
      | Error e -> Alcotest.failf "roundtrip %s: %s" (Spec.name s) e)
    [ Spec.default; golden_spec; Spec.draw ~seed:9 () ]

let test_json_rejects_malformed () =
  List.iter
    (fun j ->
      match Spec.of_json j with
      | Ok _ -> Alcotest.fail "malformed spec accepted"
      | Error _ -> ())
    [
      Json.Obj [];
      Json.Obj [ ("schema", Json.String "mcd-gen-spec/999") ];
      Json.String "not a spec";
    ]

let test_validate_ranges () =
  (match Spec.validate Spec.default with
  | Ok () -> ()
  | Error e -> Alcotest.failf "default invalid: %s" e);
  List.iter
    (fun (label, s) ->
      match Spec.validate s with
      | Ok () -> Alcotest.failf "%s accepted" label
      | Error _ -> ())
    [
      ("phases 0", { Spec.default with Spec.phases = 0 });
      ("depth 9", { Spec.default with Spec.depth = 9 });
      ("fp_mix 1.5", { Spec.default with Spec.fp_mix = 1.5 });
      ("ws_kb 0", { Spec.default with Spec.ws_kb = 0 });
      ("entropy -0.1", { Spec.default with Spec.branch_entropy = -0.1 });
      ("spread 5", { Spec.default with Spec.iter_spread = 5.0 });
      ("train window 0", { Spec.default with Spec.train_insts = 0 });
    ]

let test_draw_deterministic_and_valid () =
  List.iter
    (fun seed ->
      let a = Spec.draw ~seed () and b = Spec.draw ~seed () in
      Alcotest.(check bool) "same spec" true (a = b);
      Alcotest.(check int) "keeps its seed" seed a.Spec.seed;
      match Spec.validate a with
      | Ok () -> ()
      | Error e -> Alcotest.failf "drawn spec seed %d invalid: %s" seed e)
    [ 0; 1; 7; 1234; 999_999 ]

(* --- generated programs ----------------------------------------------- *)

let test_workload_wiring () =
  let s = { golden_spec with Spec.divergence = 0.35 } in
  let w = Spec.workload s in
  Alcotest.(check bool) "kind Generated" true (w.W.kind = W.Generated);
  Alcotest.(check int) "train window" s.Spec.train_insts w.W.train_window;
  Alcotest.(check int) "ref window" s.Spec.ref_insts w.W.ref_window;
  Alcotest.(check (float 1e-9)) "train diverges 0" 0.0
    w.W.train.P.divergence;
  Alcotest.(check (float 1e-9)) "reference diverges by the knob" 0.35
    w.W.reference.P.divergence

let test_registration_roundtrip () =
  let w = Spec.workload (Spec.draw ~seed:77 ()) in
  Suite.register w;
  (match Suite.find_opt w.W.name with
  | Some w' -> Alcotest.(check string) "found by name" w.W.name w'.W.name
  | None -> Alcotest.fail "registered workload not found");
  Alcotest.(check bool) "listed" true
    (List.exists (fun r -> r.W.name = w.W.name) (Suite.registered ()))

let test_registration_rejects_shadowing () =
  let builtin = List.hd Suite.all in
  let w = { (Spec.workload golden_spec) with W.name = builtin.W.name } in
  match Suite.register w with
  | () -> Alcotest.fail "shadowing a built-in accepted"
  | exception Invalid_argument _ -> ()

(* the walker must stream any generated program without raising; check a
   bounded prefix so heavyweight specs stay cheap *)
let walks_bounded spec =
  let w = Spec.workload spec in
  let walker = Walker.create w.W.program ~input:w.W.reference in
  let depth = ref 0 and ok = ref true in
  let budget = ref 10_000 in
  let rec go () =
    if !budget > 0 then (
      decr budget;
      match Walker.next walker with
      | None -> ()
      | Some (Walker.Inst _) -> go ()
      | Some (Walker.Marker m) ->
          (match m with
          | Walker.Enter_func _ | Walker.Enter_loop _ -> incr depth
          | Walker.Exit_func _ | Walker.Exit_loop _ -> decr depth);
          if !depth < 0 then ok := false;
          go ())
  in
  go ();
  !ok

let test_generated_programs_walk () =
  List.iter
    (fun seed ->
      Alcotest.(check bool)
        (Printf.sprintf "seed %d walks well-nested" seed)
        true
        (walks_bounded (Spec.draw ~seed ())))
    [ 3; 42; 1001 ]

(* --- shrinking --------------------------------------------------------- *)

let drawn_spec_arb =
  QCheck.make ~print:Spec.canonical
    QCheck.Gen.(map (fun seed -> Spec.draw ~seed ()) (int_range 0 1_000_000))

let prop_shrink_candidates_valid =
  QCheck.Test.make ~name:"shrink candidates validate, keep seed, differ"
    ~count:50 drawn_spec_arb (fun s ->
      List.for_all
        (fun c ->
          Result.is_ok (Spec.validate c)
          && c.Spec.seed = s.Spec.seed
          && Spec.canonical c <> Spec.canonical s)
        (Spec.shrink s))

let prop_shrink_terminates =
  QCheck.Test.make ~name:"shrinking bottoms out" ~count:20 drawn_spec_arb
    (fun s ->
      (* following the first candidate chain must reach a fixpoint *)
      let rec descend fuel s =
        fuel > 0
        && match Spec.shrink s with [] -> true | c :: _ -> descend (fuel - 1) c
      in
      descend 200 s)

(* --- the assertion layer ----------------------------------------------- *)

let good_run =
  {
    Metrics.runtime_ps = 1_000_000;
    energy_pj = 100.0;
    per_domain_pj = [| 20.0; 20.0; 20.0; 20.0; 20.0 |];
    instructions = 500;
    cycles_front = 400;
    sync_crossings = 10;
    sync_penalties = 5;
    reconfigurations = 1;
    instr_points = 0;
    instr_overhead_ps = 0;
  }

let scaled_energy run factor =
  {
    run with
    Metrics.energy_pj = run.Metrics.energy_pj *. factor;
    per_domain_pj = Array.map (fun e -> e *. factor) run.Metrics.per_domain_pj;
  }

let has_check key vs = List.exists (fun v -> v.Gassert.check = key) vs

let test_run_sane_accepts_good () =
  Alcotest.(check string) "no violations" ""
    (Gassert.render (Gassert.run_sane ~label:"good" good_run))

let test_run_sane_flags_defects () =
  List.iter
    (fun (key, run) ->
      Alcotest.(check bool) (key ^ " fires") true
        (has_check key (Gassert.run_sane ~label:"bad" run)))
    [
      ("sane-energy", { good_run with Metrics.energy_pj = -1.0 });
      ("sane-runtime", { good_run with Metrics.runtime_ps = 0 });
      ( "sane-ipc",
        { good_run with Metrics.instructions = 4_000; cycles_front = 100 } );
      ("sane-sync", { good_run with Metrics.sync_penalties = 11 });
      ( "sane-domains",
        { good_run with Metrics.per_domain_pj = [| 50.0; 50.0 |] } );
      ( "sane-energy-split",
        { good_run with Metrics.per_domain_pj = [| 1.0; 1.0; 1.0; 1.0; 1.0 |] }
      );
    ]

let test_degradation_bounded () =
  let bounded r =
    Gassert.degradation_bounded ~label:"t" ~slowdown_pct:7.0 ~epsilon_pct:1.0
      ~baseline:good_run r
  in
  (* saves energy and blows through the target: fires *)
  let saver_slow =
    scaled_energy { good_run with Metrics.runtime_ps = 1_200_000 } 0.8
  in
  Alcotest.(check bool) "fires" true
    (has_check "degradation" (bounded saver_slow));
  (* saves energy within the target: fine *)
  let saver_ok =
    scaled_energy { good_run with Metrics.runtime_ps = 1_050_000 } 0.8
  in
  Alcotest.(check bool) "within bound" false
    (has_check "degradation" (bounded saver_ok));
  (* slow but saves nothing: the invariant does not apply *)
  let waster_slow =
    scaled_energy { good_run with Metrics.runtime_ps = 1_200_000 } 1.2
  in
  Alcotest.(check bool) "no savings, no fire" false
    (has_check "degradation" (bounded waster_slow))

let test_drift_bounded () =
  let exact = scaled_energy { good_run with Metrics.runtime_ps = 1_070_000 } 0.9 in
  let agree =
    Gassert.drift_bounded ~label:"t" ~bound_pp:2.0 ~baseline:good_run ~exact
      ~sampled:exact
  in
  Alcotest.(check string) "identical runs never drift" ""
    (Gassert.render agree);
  let sampled = { exact with Metrics.runtime_ps = 1_600_000 } in
  Alcotest.(check bool) "gross drift fires" true
    (has_check "drift"
       (Gassert.drift_bounded ~label:"t" ~bound_pp:2.0 ~baseline:good_run
          ~exact ~sampled))

let suite =
  [
    ("golden digests", `Quick, test_golden_digests);
    ("regeneration byte-identical", `Quick, test_regeneration_byte_identical);
    ( "parallel generation byte-identical",
      `Quick,
      test_parallel_generation_byte_identical );
    ("name is digest prefix", `Quick, test_name_is_digest_prefix);
    ("spec json roundtrip", `Quick, test_json_roundtrip);
    ("spec json rejects malformed", `Quick, test_json_rejects_malformed);
    ("validate ranges", `Quick, test_validate_ranges);
    ("draw deterministic and valid", `Quick, test_draw_deterministic_and_valid);
    ("workload wiring", `Quick, test_workload_wiring);
    ("registration roundtrip", `Quick, test_registration_roundtrip);
    ("registration rejects shadowing", `Quick, test_registration_rejects_shadowing);
    ("generated programs walk", `Quick, test_generated_programs_walk);
    qcheck prop_shrink_candidates_valid;
    qcheck prop_shrink_terminates;
    ("run_sane accepts good", `Quick, test_run_sane_accepts_good);
    ("run_sane flags defects", `Quick, test_run_sane_flags_defects);
    ("degradation bound", `Quick, test_degradation_bounded);
    ("drift bound", `Quick, test_drift_bounded);
  ]
