(** Simulated processor configuration (the paper's Table 1).

    The default, {!alpha21264_like}, matches the paper's parameters: a
    4-wide fetch / 6-wide issue / 11-wide retire out-of-order core with
    an 80-entry ROB, 20/15/64-entry integer/fp/load-store queues, 64 KB
    2-way L1 caches, a 1 MB direct-mapped L2, and the MCD clocking model
    (250 MHz – 1 GHz domains, 110 ps jitter, 300 ps synchronization
    window). *)

type cache_geometry = {
  sets : int;
  ways : int;
  line_bytes : int;
  latency_cycles : int;  (** access latency in owning-domain cycles *)
}

type clocking =
  | Mcd  (** four independently clocked domains *)
  | Single_clock of int
      (** globally synchronous at the given frequency (MHz); no
          synchronization penalties. Used for the global-DVS baseline
          and for quantifying the inherent MCD penalty. *)

type t = {
  fetch_width : int;
  decode_depth : int;  (** front-end cycles between fetch and dispatch *)
  dispatch_width : int;
  retire_width : int;
  rob_size : int;
  int_phys_regs : int;
  fp_phys_regs : int;
  iq_int_size : int;
  iq_fp_size : int;
  lsq_size : int;
  int_alus : int;
  int_mults : int;
  fp_alus : int;
  fp_mults : int;
  int_alu_latency : int;
  int_mult_latency : int;
  fp_alu_latency : int;
  fp_mult_latency : int;
  issue_per_domain : int;  (** issue width within each back-end domain *)
  mem_ports : int;
  l1i : cache_geometry;
  l1d : cache_geometry;
  l2 : cache_geometry;
  main_memory_ns : int;
  branch_penalty_cycles : int;
  clocking : clocking;
  jitter : bool;
  seed : int;  (** seed for clock jitter streams *)
}

val alpha21264_like : t
(** Table 1 configuration with MCD clocking. *)

val single_clock : mhz:int -> t
(** The same core, globally synchronous at [mhz]. *)

val pp_table : Format.formatter -> t -> unit
(** Render the configuration as a Table-1-style listing. *)
