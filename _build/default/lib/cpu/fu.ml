type t = {
  next_free : int array; (* per-unit time (ps) at which it can accept work *)
  latency : int;
  pipelined : bool;
  mutable ops : int;
}

let create ~count ~latency_cycles ~pipelined =
  assert (count > 0 && latency_cycles > 0);
  { next_free = Array.make count 0; latency = latency_cycles; pipelined; ops = 0 }

let try_issue t ~now ~period_ps =
  let n = Array.length t.next_free in
  let rec find i =
    if i >= n then None
    else if t.next_free.(i) <= now then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some i ->
      let completion = now + (t.latency * period_ps) in
      t.next_free.(i) <- (if t.pipelined then now + period_ps else completion);
      t.ops <- t.ops + 1;
      Some completion

let latency_cycles t = t.latency
let operations t = t.ops
