lib/core/path_model.mli: Mcd_domains
