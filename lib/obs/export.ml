let default_domain_names sink =
  Array.init (Sink.domains sink) (fun i -> Printf.sprintf "d%d" i)

let resolve_names ?domain_names sink =
  match domain_names with
  | Some names when Array.length names = Sink.domains sink -> names
  | Some _ -> invalid_arg "Export: domain_names arity mismatch"
  | None -> default_domain_names sink

(* ------------------------------------------------------------------ *)
(* JSON-lines metrics dump                                            *)
(* ------------------------------------------------------------------ *)

let metrics_jsonl sink =
  let buf = Buffer.create 1024 in
  Metrics.iter
    (fun inst ->
      let obj =
        match inst with
        | Metrics.Counter c ->
            Json.Obj
              [
                ("name", Json.String (Metrics.name inst));
                ("kind", Json.String "counter");
                ("value", Json.Int (Metrics.value c));
              ]
        | Metrics.Gauge g ->
            Json.Obj
              [
                ("name", Json.String (Metrics.name inst));
                ("kind", Json.String "gauge");
                ("value", Json.Float (Metrics.peek g));
              ]
        | Metrics.Histogram h ->
            Json.Obj
              [
                ("name", Json.String (Metrics.name inst));
                ("kind", Json.String "histogram");
                ("bins", Json.Int (Metrics.bins h));
                ( "weights",
                  Json.List
                    (Array.to_list
                       (Array.map (fun w -> Json.Float w) (Metrics.weights h))) );
              ]
      in
      Buffer.add_string buf (Json.to_string obj);
      Buffer.add_char buf '\n')
    (Sink.metrics sink);
  (* Ring-eviction accounting rides along so consumers can tell whether
     the event list is complete. *)
  Buffer.add_string buf
    (Json.to_string
       (Json.Obj
          [
            ("name", Json.String "obs.dropped_events");
            ("kind", Json.String "counter");
            ("value", Json.Int (Sink.dropped_events sink));
          ]));
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* CSV time series                                                    *)
(* ------------------------------------------------------------------ *)

let series_csv ?domain_names sink =
  let names = resolve_names ?domain_names sink in
  let d = Sink.domains sink in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "t_ps,cycles,ipc";
  let per_domain col =
    Array.iter (fun nm -> Buffer.add_string buf (Printf.sprintf ",%s_%s" col nm)) names
  in
  per_domain "mhz";
  per_domain "volt";
  per_domain "occ";
  per_domain "pj";
  Buffer.add_string buf ",pj_external\n";
  Series.iter
    (fun (row : Series.row) ->
      Buffer.add_string buf (Printf.sprintf "%d,%d,%.6f" row.t_ps row.cycles row.ipc);
      Array.iter (fun v -> Buffer.add_string buf (Printf.sprintf ",%.3f" v)) row.mhz;
      Array.iter (fun v -> Buffer.add_string buf (Printf.sprintf ",%.4f" v)) row.volt;
      Array.iter (fun v -> Buffer.add_string buf (Printf.sprintf ",%.3f" v)) row.occ;
      for i = 0 to d - 1 do
        Buffer.add_string buf (Printf.sprintf ",%.4f" row.pj.(i))
      done;
      Buffer.add_string buf (Printf.sprintf ",%.4f\n" row.pj.(d)))
    (Sink.series sink);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Chrome trace-event format                                          *)
(* ------------------------------------------------------------------ *)

let us_of_ps ps = float_of_int ps /. 1e6

let chrome_trace ?domain_names sink =
  let names = resolve_names ?domain_names sink in
  let events = ref [] in
  let emit e = events := e :: !events in
  (* One thread track per clock domain, plus tid = domains for
     cross-domain (whole-setting) events. *)
  Array.iteri
    (fun i nm ->
      emit
        (Json.Obj
           [
             ("ph", Json.String "M");
             ("pid", Json.Int 0);
             ("tid", Json.Int i);
             ("name", Json.String "thread_name");
             ("args", Json.Obj [ ("name", Json.String nm) ]);
           ]))
    names;
  emit
    (Json.Obj
       [
         ("ph", Json.String "M");
         ("pid", Json.Int 0);
         ("tid", Json.Int (Array.length names));
         ("name", Json.String "thread_name");
         ("args", Json.Obj [ ("name", Json.String "controller") ]);
       ]);
  (* Sampled per-domain counter tracks: frequency and occupancy. *)
  Series.iter
    (fun (row : Series.row) ->
      let ts = Json.Float (us_of_ps row.t_ps) in
      Array.iteri
        (fun i nm ->
          emit
            (Json.Obj
               [
                 ("ph", Json.String "C");
                 ("pid", Json.Int 0);
                 ("name", Json.String (Printf.sprintf "freq %s (MHz)" nm));
                 ("ts", ts);
                 ("args", Json.Obj [ ("mhz", Json.Float row.mhz.(i)) ]);
               ]);
          emit
            (Json.Obj
               [
                 ("ph", Json.String "C");
                 ("pid", Json.Int 0);
                 ("name", Json.String (Printf.sprintf "occupancy %s" nm));
                 ("ts", ts);
                 ("args", Json.Obj [ ("occ", Json.Float row.occ.(i)) ]);
               ]))
        names)
    (Sink.series sink);
  (* Structured events as instants. *)
  let setting_json setting =
    Json.List (Array.to_list (Array.map (fun mhz -> Json.Int mhz) setting))
  in
  let instant ~tid ~name ~ts ~args =
    emit
      (Json.Obj
         [
           ("ph", Json.String "i");
           ("s", Json.String "t");
           ("pid", Json.Int 0);
           ("tid", Json.Int tid);
           ("name", Json.String name);
           ("ts", Json.Float (us_of_ps ts));
           ("args", Json.Obj args);
         ])
  in
  let controller_tid = Array.length names in
  List.iter
    (fun ev ->
      match ev with
      | Sink.Reconfig_write { t_ps; before; after; noop } ->
          instant ~tid:controller_tid ~name:"reconfig" ~ts:t_ps
            ~args:
              [
                ("before", setting_json before);
                ("after", setting_json after);
                ("noop", Json.Bool noop);
              ]
      | Sink.Dvfs_retarget { t_ps; domain; before; after } ->
          instant ~tid:domain ~name:"retarget" ~ts:t_ps
            ~args:[ ("before_mhz", Json.Int before); ("after_mhz", Json.Int after) ]
      | Sink.Sync_penalty { t_ps; domain } ->
          instant ~tid:domain ~name:"sync-penalty" ~ts:t_ps ~args:[]
      | Sink.Decision { t_ps; source; trigger; setting; detail } ->
          let args =
            [
              ("source", Json.String source);
              ("trigger", Json.String (Sink.trigger_name trigger));
              ("detail", Json.String detail);
            ]
          in
          let args =
            match setting with
            | Some s -> ("setting", setting_json s) :: args
            | None -> args
          in
          instant ~tid:controller_tid ~name:"decision" ~ts:t_ps ~args
      | Sink.Degraded { t_ps; source; detail } ->
          instant ~tid:controller_tid ~name:"degraded" ~ts:t_ps
            ~args:[ ("source", Json.String source); ("detail", Json.String detail) ])
    (Sink.events sink);
  Json.to_string (Json.Obj [ ("traceEvents", Json.List (List.rev !events)) ])

(* ------------------------------------------------------------------ *)
(* Directory writer                                                   *)
(* ------------------------------------------------------------------ *)

let rec mkdir_p dir =
  if dir = "" || dir = "." || dir = "/" || Sys.file_exists dir then ()
  else begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ when Sys.file_exists dir -> ()
  end

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

let write_dir ?domain_names ~dir sink =
  mkdir_p dir;
  let out name contents =
    let path = Filename.concat dir name in
    write_file path contents;
    path
  in
  [
    out "metrics.jsonl" (metrics_jsonl sink);
    out "series.csv" (series_csv ?domain_names sink);
    out "trace.json" (chrome_trace ?domain_names sink);
  ]
