(** Run-time call-path tracking over a training tree.

    This mirrors what the edited binary's instrumentation does during a
    production run: prologues and epilogues maintain the current
    call-tree node label by walking the tree recorded at training time.
    Paths that did not occur during training map to the distinguished
    label 0 — represented here as [Unknown] — and stay unknown until
    control returns to a known node. Used by the profile-driven
    reconfiguration policy (for path-tracking contexts) and by the trace
    segmenter of the off-line analysis. *)

type position =
  | Known of int  (** node id in the training tree *)
  | Unknown  (** label 0: a path not seen during training *)

type change =
  | Entered of position
  | Exited of { restored : position }
  | Ignored  (** marker not tracked under this context *)

type t

val create : Call_tree.t -> t
(** Track under the tree's own context (loops and sites as the tree was
    built; paths always). *)

val on_marker : t -> Mcd_isa.Walker.marker -> change

val current : t -> position

val depth : t -> int
(** Current stack depth (root = 0). *)
