(* Chaos harness for the crash-safe experiment daemon, run by @verify.

   Every phase drives real forked server processes on Unix sockets under
   a fresh temp cache, with every stochastic choice (kill timing, journal
   tearing, backoff jitter) drawn from one fixed-seed Rng stream, so a
   failing run reproduces.

   Phases:

   1. racing starts: two servers race for the same socket past a stale
      socket file; the start lock must let exactly one win, and the
      loser must exit with a typed Server_unavailable, never steal or
      corrupt the winner's socket;

   2. kill9-restart-replay loop (the core): >= 20 cycles of submit →
      SIGKILL at a seeded random moment → restart on the same journal
      (torn by Inject.tear_file every third cycle) → verify. The
      invariant checked every cycle: every acknowledged job is
      eventually served with bytes identical to a one-shot Runner run —
      via journal replay when the job was still incomplete, via
      resubmit-through-the-store when it had completed and been
      compacted away (typed Unknown_job, retried by the client layer);

   3. worker crash: Inject.crash_compute kills the whole server process
      mid-compute; the acked job must be replayed and served by the
      restarted server;

   4. deadline: a compute that outruns the per-job deadline must fail
      that job with a typed Deadline_exceeded — and only that job: a
      fast job submitted right after must still complete (the watchdog
      spawned a replacement worker; the zombie retires silently);

   5. drain deadline with parked waiters: a drain whose deadline expires
      while a client is parked on a wait must answer Draining (never
      hang, never close silently); the acked-but-unfetched job must
      still be served by a restarted server (replay or
      resubmit-after-compaction, whichever the exit left behind);

   6. SIGTERM during journal replay: a server restarted onto a crafted
      journal is SIGTERMed while the replayed compute is in flight; the
      drain must complete the job before exiting, and the next restart
      must find the journal compacted clean.

   A global alarm bounds the whole harness, so a wedged select loop or
   a hung client turns into a loud failure instead of a stuck CI job.
   Exits 0 on success, 1 with a message on the first violation. *)

module Server = Mcd_serve.Server
module Client = Mcd_serve.Client
module Protocol = Mcd_serve.Protocol
module Journal = Mcd_serve.Journal
module Store = Mcd_cache.Store
module Runner = Mcd_experiments.Runner
module Metrics = Mcd_power.Metrics
module Suite = Mcd_workloads.Suite
module Context = Mcd_profiling.Context
module Error = Mcd_robust.Error
module Inject = Mcd_robust.Inject
module Rng = Mcd_util.Rng

let seed = 1789
let cycles = 22

let failures = ref 0

let check cond fmt =
  Printf.ksprintf
    (fun msg ->
      if not cond then begin
        incr failures;
        Printf.eprintf "chaos_smoke: FAIL %s\n%!" msg
      end)
    fmt

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1))
  in
  nn = 0 || go 0

let metric_value body name =
  let needle = Printf.sprintf "\"name\":\"%s\"" name in
  String.split_on_char '\n' body
  |> List.find_opt (fun line -> contains line needle)
  |> Option.map (fun line ->
         let marker = "\"value\":" in
         let rec find i =
           if i + String.length marker > String.length line then None
           else if String.sub line i (String.length marker) = marker then
             Some (i + String.length marker)
           else find (i + 1)
         in
         match find 0 with
         | None -> nan
         | Some start ->
             let stop = ref start in
             while
               !stop < String.length line
               &&
               match line.[!stop] with
               | '0' .. '9' | '.' | '-' | 'e' | '+' -> true
               | _ -> false
             do
               incr stop
             done;
             float_of_string (String.sub line start (!stop - start)))

(* --- process helpers --------------------------------------------------- *)

let fork_server ?digest ?compute cfg =
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
      let code =
        match Server.run ?digest ?compute cfg with
        | Ok () -> 0
        | Error e ->
            Printf.eprintf "chaos_smoke server: %s\n%!" (Error.to_string e);
            1
      in
      exit code
  | pid -> pid

let wait_for_server socket =
  let deadline = Unix.gettimeofday () +. 30.0 in
  let rec go () =
    match Client.connect ~socket with
    | Ok c ->
        Client.close c;
        true
    | Error _ ->
        if Unix.gettimeofday () > deadline then false
        else begin
          Unix.sleepf 0.05;
          go ()
        end
  in
  go ()

let reap_status pid = snd (Unix.waitpid [] pid)

let reap ~what pid =
  match reap_status pid with
  | Unix.WEXITED code -> check (code = 0) "%s exited with code %d" what code
  | Unix.WSIGNALED s | Unix.WSTOPPED s ->
      check false "%s killed/stopped by signal %d" what s

let drain_and_reap ~what socket pid =
  (match Client.connect ~socket with
  | Ok c ->
      (match Client.drain c with
      | Ok () -> ()
      | Error e -> check false "drain %s: %s" what (Error.to_string e));
      Client.close c
  | Error e -> check false "connect to drain %s: %s" what (Error.to_string e));
  reap ~what pid

let server_stat socket name =
  match Client.connect ~socket with
  | Error e ->
      check false "stats connect: %s" (Error.to_string e);
      0.0
  | Ok c ->
      let v =
        match Client.stats c with
        | Ok body -> Option.value ~default:0.0 (metric_value body name)
        | Error e ->
            check false "stats: %s" (Error.to_string e);
            0.0
      in
      Client.close c;
      v

(* --- phase 1: racing starts -------------------------------------------- *)

let phase_racing_starts socket =
  (* Plant a stale socket file so both racers also race the
     probe→unlink→rebind sequence, the exact window the lock closes. *)
  let planted = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind planted (Unix.ADDR_UNIX socket);
  Unix.close planted;
  let cfg = { (Server.default_config ~socket) with drain_grace_s = 0.2 } in
  let a = fork_server cfg and b = fork_server cfg in
  check (wait_for_server socket) "no racing server came up";
  (* Exactly one racer loses, promptly, with exit 1 (the typed
     Server_unavailable path); the other keeps serving. *)
  let rec find_loser waited =
    match Unix.waitpid [ Unix.WNOHANG ] a with
    | 0, _ -> (
        match Unix.waitpid [ Unix.WNOHANG ] b with
        | 0, _ ->
            if waited > 10.0 then None
            else begin
              Unix.sleepf 0.05;
              find_loser (waited +. 0.05)
            end
        | _, status -> Some (a, b, status))
    | _, status -> Some (b, a, status)
  in
  match find_loser 0.0 with
  | None ->
      check false "both racing servers are still running";
      Unix.kill a Sys.sigkill;
      Unix.kill b Sys.sigkill;
      ignore (reap_status a);
      ignore (reap_status b)
  | Some (winner, _loser, loser_status) ->
      (match loser_status with
      | Unix.WEXITED 1 -> ()
      | Unix.WEXITED code -> check false "racing loser exited %d, want 1" code
      | Unix.WSIGNALED s | Unix.WSTOPPED s ->
          check false "racing loser died by signal %d" s);
      (* the winner's socket still answers after the loser's exit *)
      (match Client.connect ~socket with
      | Ok c ->
          check (Client.ping c = Ok ()) "winner does not answer ping";
          Client.close c
      | Error e -> check false "winner unreachable: %s" (Error.to_string e));
      drain_and_reap ~what:"racing winner" socket winner

(* --- phase 2: kill9-restart-replay loop -------------------------------- *)

let workload_name = "adpcm decode"
let r0 = Protocol.request ~policy:Protocol.Baseline workload_name
let r1 = Protocol.request ~policy:Protocol.Online workload_name

let retry_policy ~cycle =
  {
    Client.default_policy with
    Client.max_attempts = 12;
    base_delay_ms = 20;
    max_delay_ms = 500;
    seed = Some ((seed * 1000) + cycle);
  }

let phase_kill9_loop socket journal_path ~expected_baseline ~expected_online =
  let rng = Rng.split (Rng.create seed) ~label:"kill9" in
  let cfg =
    {
      (Server.default_config ~socket) with
      workers = 2;
      journal = Some journal_path;
      drain_grace_s = 0.2;
    }
  in
  let expected = [ (r0, expected_baseline); (r1, expected_online) ] in
  let total_replayed = ref 0.0 in
  let server = ref (fork_server cfg) in
  check (wait_for_server socket) "kill9 loop: first server never came up";
  for cycle = 1 to cycles do
    (* submit and collect acks; on every 4th cycle also wait for
       completion first, so the kill lands after compaction-eligible
       records and the Unknown_job/resubmit path is exercised too *)
    let acked = ref [] in
    (match Client.connect ~socket with
    | Error e -> check false "cycle %d connect: %s" cycle (Error.to_string e)
    | Ok c ->
        List.iter
          (fun (req, _) ->
            match Client.submit c req with
            | Ok t -> acked := (req, t.Client.id) :: !acked
            | Error e ->
                check false "cycle %d submit: %s" cycle (Error.to_string e))
          expected;
        if cycle mod 4 = 0 then
          List.iter
            (fun (_, id) ->
              match Client.wait c id with
              | Ok _ -> ()
              | Error e ->
                  check false "cycle %d wait %d: %s" cycle id
                    (Error.to_string e))
            !acked
        else begin
          (* park on a wait and let the kill sever the socket: the
             client must get a typed transport error, not a hang *)
          Unix.sleepf (Rng.float rng 0.08);
          ()
        end;
        Unix.kill !server Sys.sigkill;
        (match !acked with
        | (_, id) :: _ when cycle mod 4 <> 0 -> (
            match Client.wait c id with
            | Ok _ -> () (* finished just before the kill *)
            | Error (Error.Server_unavailable _) -> ()
            | Error e ->
                check false "cycle %d wait across kill: unexpected %s" cycle
                  (Error.to_string e))
        | _ -> ());
        Client.close c);
    (match reap_status !server with
    | Unix.WSIGNALED s ->
        check (s = Sys.sigkill) "cycle %d server died by signal %d" cycle s
    | Unix.WEXITED code ->
        check false "cycle %d server exited %d, want SIGKILL" cycle code
    | Unix.WSTOPPED s -> check false "cycle %d server stopped (%d)" cycle s);
    (* every third cycle, tear the journal tail: a crash mid-append *)
    if cycle mod 3 = 0 && Sys.file_exists journal_path then
      Inject.tear_file ~rng ~path:journal_path;
    (* restart on the same journal + cache *)
    server := fork_server cfg;
    check (wait_for_server socket) "cycle %d restart never came up" cycle;
    total_replayed := !total_replayed +. server_stat socket "serve.replayed";
    (* an acked id is either replayed (status answers) or compacted
       away because it completed (typed Unknown_job) — never anything
       else *)
    (match Client.connect ~socket with
    | Error e ->
        check false "cycle %d status connect: %s" cycle (Error.to_string e)
    | Ok c ->
        List.iter
          (fun (_, id) ->
            match Client.status c id with
            | Ok _ -> ()
            | Error (Error.Unknown_job _) -> ()
            | Error e ->
                check false "cycle %d status %d: unexpected %s" cycle id
                  (Error.to_string e))
          !acked;
        Client.close c);
    (* the invariant: every acknowledged job is eventually served,
       byte-identical to the one-shot Runner run *)
    List.iter
      (fun (req, want) ->
        match
          Client.run_with_retry ~policy:(retry_policy ~cycle) ~socket req
        with
        | Ok payload ->
            check (payload = want)
              "cycle %d: served bytes differ from one-shot run" cycle
        | Error e ->
            check false "cycle %d: acked job never served: %s" cycle
              (Error.to_string e))
      expected
  done;
  check (!total_replayed >= 1.0)
    "no cycle ever replayed a journaled job (replayed=%g)" !total_replayed;
  drain_and_reap ~what:"kill9 loop final server" socket !server

(* --- phase 3: worker crash mid-compute --------------------------------- *)

let canned_digest (r : Protocol.request) =
  Ok (Printf.sprintf "canned-%s" (Mcd_cache.Key.float_param r.slowdown_pct))

let canned_payload (r : Protocol.request) =
  Printf.sprintf "payload-%s" (Mcd_cache.Key.float_param r.slowdown_pct)

let phase_worker_crash socket journal_path =
  let victim = Protocol.request ~slowdown_pct:66.0 workload_name in
  let crashing (r : Protocol.request) =
    if r.slowdown_pct = 66.0 then Inject.crash_compute ~after_s:0.05 () r
    else canned_payload r
  in
  let cfg =
    {
      (Server.default_config ~socket) with
      workers = 1;
      journal = Some journal_path;
      drain_grace_s = 0.2;
    }
  in
  let server = fork_server ~digest:canned_digest ~compute:crashing cfg in
  check (wait_for_server socket) "worker-crash server never came up";
  (match Client.connect ~socket with
  | Error e -> check false "worker-crash connect: %s" (Error.to_string e)
  | Ok c ->
      (match Client.submit c victim with
      | Ok _ -> () (* acked before the crash: the ack is write-ahead *)
      | Error e ->
          check false "worker-crash submit: %s" (Error.to_string e));
      Client.close c);
  (match reap_status server with
  | Unix.WEXITED 9 -> ()
  | Unix.WEXITED code ->
      check false "crashed server exited %d, want 9" code
  | Unix.WSIGNALED s | Unix.WSTOPPED s ->
      check false "crashed server died by signal %d, want exit 9" s);
  (* the restarted server (sane compute) must replay and serve it *)
  let server = fork_server ~digest:canned_digest ~compute:canned_payload cfg in
  check (wait_for_server socket) "post-crash server never came up";
  check
    (server_stat socket "serve.replayed" >= 1.0)
    "post-crash server replayed nothing";
  (match
     Client.run_with_retry ~policy:(retry_policy ~cycle:0) ~socket victim
   with
  | Ok payload ->
      check
        (payload = canned_payload victim)
        "replayed worker-crash payload differs"
  | Error e ->
      check false "worker-crash job never served: %s" (Error.to_string e));
  drain_and_reap ~what:"worker-crash server" socket server

(* --- phase 4: deadline fails the job, never the pool ------------------- *)

let phase_deadline socket =
  let slow = Protocol.request ~slowdown_pct:7.5 workload_name in
  let fast = Protocol.request ~slowdown_pct:1.0 workload_name in
  let compute (r : Protocol.request) =
    if r.slowdown_pct = 7.5 then Unix.sleepf 2.0;
    canned_payload r
  in
  let cfg =
    {
      (Server.default_config ~socket) with
      workers = 1;
      journal = None;
      deadline_s = Some 0.15;
      drain_grace_s = 0.2;
      drain_deadline_s = 10.0;
    }
  in
  let server = fork_server ~digest:canned_digest ~compute cfg in
  check (wait_for_server socket) "deadline server never came up";
  (match Client.connect ~socket with
  | Error e -> check false "deadline connect: %s" (Error.to_string e)
  | Ok c ->
      (match Client.run c slow with
      | Error (Error.Deadline_exceeded { deadline_ms; _ }) ->
          check (deadline_ms = 150) "deadline_ms=%d, want 150" deadline_ms
      | Error e ->
          check false "slow job: want Deadline_exceeded, got %s"
            (Error.to_string e)
      | Ok _ -> check false "slow job returned a payload past its deadline");
      (* the pool survived: a fast job completes while the zombie
         worker is still sleeping *)
      (match Client.run c fast with
      | Ok payload ->
          check (payload = canned_payload fast) "fast payload differs"
      | Error e ->
          check false "fast job after deadline kill: %s" (Error.to_string e));
      (match Client.stats c with
      | Ok body ->
          let v name = Option.value ~default:0.0 (metric_value body name) in
          check
            (v "serve.deadline_exceeded" = 1.0)
            "deadline_exceeded=%g, want 1" (v "serve.deadline_exceeded");
          check (v "serve.completed" = 1.0) "completed=%g, want 1"
            (v "serve.completed")
      | Error e -> check false "deadline stats: %s" (Error.to_string e));
      Client.close c);
  drain_and_reap ~what:"deadline server" socket server

(* --- phase 5: drain deadline answers parked waiters -------------------- *)

let phase_drain_parked socket journal_path =
  let slow = Protocol.request ~slowdown_pct:9.0 workload_name in
  let compute (r : Protocol.request) =
    if r.slowdown_pct = 9.0 then Unix.sleepf 1.5;
    canned_payload r
  in
  let cfg =
    {
      (Server.default_config ~socket) with
      workers = 1;
      journal = Some journal_path;
      drain_grace_s = 0.1;
      drain_deadline_s = 0.4;
    }
  in
  let server = fork_server ~digest:canned_digest ~compute cfg in
  check (wait_for_server socket) "drain-parked server never came up";
  (match Client.connect ~socket with
  | Error e -> check false "drain-parked connect: %s" (Error.to_string e)
  | Ok c -> (
      match Client.submit c slow with
      | Error e -> check false "drain-parked submit: %s" (Error.to_string e)
      | Ok t ->
          (* a second connection triggers the drain while the first is
             parked on a wait the compute cannot satisfy in time *)
          (match Client.connect ~socket with
          | Ok d ->
              (match Client.drain d with
              | Ok () -> ()
              | Error e ->
                  check false "drain command: %s" (Error.to_string e));
              Client.close d
          | Error e ->
              check false "drain connection: %s" (Error.to_string e));
          (match Client.wait c t.Client.id with
          | Error (Error.Draining _) -> ()
          | Error e ->
              check false
                "parked wait across expired drain: want Draining, got %s"
                (Error.to_string e)
          | Ok state ->
              check false "parked wait answered %s before the compute could"
                (Protocol.state_name state));
          Client.close c));
  (* the zombie compute (1.5s) outlives the drain deadline (0.4s); the
     exit path joins it (its late result is journaled done), so the
     server still exits 0 *)
  reap ~what:"drain-parked server" server;
  (* acknowledged-implies-served: whether the job was joined to
     completion on exit (compacted away → Unknown_job → resubmit) or
     left incomplete (replayed), a restart must serve its bytes *)
  let server = fork_server ~digest:canned_digest ~compute cfg in
  check (wait_for_server socket) "post-drain server never came up";
  (match
     Client.run_with_retry ~policy:(retry_policy ~cycle:1) ~socket slow
   with
  | Ok payload ->
      check (payload = canned_payload slow) "post-drain payload differs"
  | Error e ->
      check false "journaled job lost across drain+restart: %s"
        (Error.to_string e));
  drain_and_reap ~what:"post-drain server" socket server

(* --- phase 6: SIGTERM during journal replay ---------------------------- *)

(* A hand-crafted journal guarantees the restart actually has work to
   replay (a graceful predecessor would have joined its workers and
   marked everything done). SIGTERM lands while the replayed compute is
   in flight; the drain must complete it before exiting 0. *)
let phase_sigterm_replay socket journal_path =
  let slow = Protocol.request ~slowdown_pct:9.0 workload_name in
  let compute (r : Protocol.request) =
    if r.slowdown_pct = 9.0 then Unix.sleepf 1.5;
    canned_payload r
  in
  (match Journal.open_journal ~path:journal_path () with
  | Error e -> check false "craft journal: %s" (Error.to_string e)
  | Ok (j, _) ->
      let digest =
        match canned_digest slow with Ok d -> d | Error _ -> assert false
      in
      Journal.admit j
        {
          Journal.id = 7;
          client = "crafted";
          priority = Protocol.Normal;
          digest;
          request = slow;
        };
      Journal.close j);
  let cfg =
    {
      (Server.default_config ~socket) with
      workers = 1;
      journal = Some journal_path;
      drain_grace_s = 0.1;
      drain_deadline_s = 10.0;
    }
  in
  let server = fork_server ~digest:canned_digest ~compute cfg in
  check (wait_for_server socket) "replay server never came up";
  check
    (server_stat socket "serve.replayed" >= 1.0)
    "crafted journal was not replayed";
  Unix.kill server Sys.sigterm;
  reap ~what:"server SIGTERMed during replay" server;
  (* the drain completed the replayed job, so the journal is now
     compacted clean: a fresh server has nothing to replay and a query
     for the crafted id is a typed Unknown_job *)
  let server = fork_server ~digest:canned_digest ~compute cfg in
  check (wait_for_server socket) "post-replay server never came up";
  check
    (server_stat socket "serve.replayed" = 0.0)
    "journal not compacted after drained replay";
  (match Client.connect ~socket with
  | Ok c ->
      (match Client.status c 7 with
      | Error (Error.Unknown_job _) -> ()
      | Ok _ -> check false "drained replay job still known after compaction"
      | Error e ->
          check false "post-replay status: unexpected %s" (Error.to_string e));
      Client.close c
  | Error e -> check false "post-replay connect: %s" (Error.to_string e));
  drain_and_reap ~what:"post-replay server" socket server

(* --- main -------------------------------------------------------------- *)

let () =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  ignore (Unix.alarm 540);
  let tmp =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "mcd-chaos-smoke.%d" (Unix.getpid ()))
  in
  rm_rf tmp;
  Unix.mkdir tmp 0o755;
  let socket n = Filename.concat tmp (Printf.sprintf "s%d.sock" n) in
  let cache_dir = Filename.concat tmp "cache" in
  Fun.protect ~finally:(fun () -> rm_rf tmp) @@ fun () ->
  (* One-shot expected payloads, computed with caching off so the
     comparison is against a genuinely independent computation. *)
  Store.set_default None;
  let w = Suite.by_name workload_name in
  let expected_baseline =
    Metrics.encode
      (Runner.run_request w ~policy:`Baseline ~context:Context.lf
         ~slowdown_pct:Runner.default_slowdown_pct)
  in
  let expected_online =
    Metrics.encode
      (Runner.run_request w ~policy:`Online ~context:Context.lf
         ~slowdown_pct:Runner.default_slowdown_pct)
  in
  (* Servers (forked below) inherit this default store. *)
  Store.set_default (Some (Store.create ~dir:cache_dir));
  phase_racing_starts (socket 1);
  phase_kill9_loop (socket 2)
    (Filename.concat tmp "kill9.journal")
    ~expected_baseline ~expected_online;
  phase_worker_crash (socket 3) (Filename.concat tmp "crash.journal");
  phase_deadline (socket 4);
  phase_drain_parked (socket 5) (Filename.concat tmp "drain.journal");
  phase_sigterm_replay (socket 6) (Filename.concat tmp "replay.journal");
  if !failures = 0 then print_endline "chaos_smoke: OK"
  else begin
    Printf.eprintf "chaos_smoke: %d failure(s)\n%!" !failures;
    exit 1
  end
