module Call_tree = Mcd_profiling.Call_tree
module Context = Mcd_profiling.Context
module Histogram = Mcd_util.Histogram
module Domain = Mcd_domains.Domain
module Freq = Mcd_domains.Freq
module Reconfig = Mcd_domains.Reconfig
module Error = Mcd_robust.Error
module Validate = Mcd_robust.Validate

(* FNV-1a over a canonical rendering of the tree structure. *)
let fingerprint tree =
  let h = ref 0xCBF29CE484222325L in
  let mix s =
    String.iter
      (fun c ->
        h := Int64.logxor !h (Int64.of_int (Char.code c));
        h := Int64.mul !h 0x100000001B3L)
      s
  in
  Call_tree.iter tree ~f:(fun n ->
      let kind =
        match n.Call_tree.kind with
        | Call_tree.Root -> "R"
        | Call_tree.Func_node { fid; site } -> Printf.sprintf "F%d@%d" fid site
        | Call_tree.Loop_node { loop_id } -> Printf.sprintf "L%d" loop_id
      in
      mix
        (Printf.sprintf "%d:%s:%d:%b;" n.Call_tree.id kind n.Call_tree.parent
           n.Call_tree.long));
  Printf.sprintf "%016Lx" !h

let setting_to_string (s : Reconfig.setting) =
  String.concat "," (Array.to_list (Array.map string_of_int s))

let floats_to_string arr =
  String.concat "," (Array.to_list (Array.map (Printf.sprintf "%h") arr))

let unit_to_string = function
  | Call_tree.Func_unit fid -> Printf.sprintf "func:%d" fid
  | Call_tree.Loop_unit id -> Printf.sprintf "loop:%d" id

let to_string (plan : Plan.t) =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "mcd-dvfs-plan 1\n";
  add "context %s\n" plan.Plan.context.Context.name;
  add "slowdown %h\n" plan.Plan.slowdown_pct;
  add "tree %s\n" (fingerprint plan.Plan.tree);
  (* Hashtbl.iter order is deterministic for identically-built tables
     but arbitrary; sort by key so structurally equal plans render
     identically — the cache's byte-level comparisons depend on it. *)
  let sorted_by key_of tbl =
    List.sort
      (fun a b -> compare (key_of a) (key_of b))
      (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
  in
  List.iter
    (fun (id, s) -> add "node %d %s\n" id (setting_to_string s))
    (sorted_by fst plan.Plan.node_settings);
  List.iter
    (fun (u, s) -> add "unit %s %s\n" (unit_to_string u) (setting_to_string s))
    (sorted_by (fun (u, _) -> unit_to_string u) plan.Plan.unit_settings);
  List.iter
    (fun (id, hists) ->
      Array.iteri
        (fun d h ->
          let weights =
            Array.init (Histogram.bins h) (fun bin -> Histogram.get h ~bin)
          in
          add "hist %d %d %s\n" id d (floats_to_string weights))
        hists)
    (sorted_by fst plan.Plan.node_histograms);
  List.iter
    (fun (id, (pm : Path_model.t)) ->
      (* Segment list order is construction-dependent (add_segment
         prepends, so a parsed plan holds them reversed); render each
         node's segments sorted by their line text so semantically
         equal plans are byte-equal. *)
      let lines =
        List.map
          (fun (seg : Path_model.segment) ->
            let b = Buffer.create 128 in
            Buffer.add_string b (Printf.sprintf "seg %d %h" id seg.Path_model.base_ps);
            List.iter
              (fun signature ->
                Buffer.add_char b ' ';
                Buffer.add_string b (floats_to_string signature))
              seg.Path_model.signatures;
            Buffer.contents b)
          pm.Path_model.segments
      in
      List.iter (fun l -> add "%s\n" l) (List.sort compare lines))
    (sorted_by fst plan.Plan.node_paths);
  (* trailer so a truncated copy is detectable *)
  add "end\n";
  Buffer.contents buf

let save (plan : Plan.t) ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string plan))

(* --- loading ----------------------------------------------------------- *)

(* Per-line parsing failures are reported through this local exception
   and turned into typed diagnostics by the caller; it never escapes
   [load_result]. *)
exception Reject of string

let parse_int s =
  match int_of_string s with
  | v -> v
  | exception Failure _ -> raise (Reject (Printf.sprintf "bad integer %S" s))

let parse_float s =
  match float_of_string s with
  | v -> v
  | exception Failure _ -> raise (Reject (Printf.sprintf "bad float %S" s))

let setting_of_string str =
  let parts = String.split_on_char ',' str in
  if List.length parts <> Domain.count then
    raise
      (Reject
         (Printf.sprintf "setting has %d fields, expected %d"
            (List.length parts) Domain.count));
  Array.of_list (List.map parse_int parts)

let floats_of_string str =
  Array.of_list (List.map parse_float (String.split_on_char ',' str))

let unit_of_string s =
  match String.split_on_char ':' s with
  | [ "func"; n ] -> Call_tree.Func_unit (parse_int n)
  | [ "loop"; n ] -> Call_tree.Loop_unit (parse_int n)
  | _ -> raise (Reject (Printf.sprintf "bad static unit %S" s))

type loaded = { plan : Plan.t; warnings : Error.t list }

let of_string_result ?(path = "<string>") ~tree content =
  if content = "" then Result.Error [ Error.Empty_file { path } ]
  else begin
    let all_lines = String.split_on_char '\n' content in
    (* drop the empty fragment after a final newline, mirroring what
       line-by-line file reading used to see *)
    let all_lines =
      match List.rev all_lines with
      | "" :: rest -> List.rev rest
      | _ -> all_lines
    in
    match all_lines with
    | [] -> Result.Error [ Error.Empty_file { path } ]
    | header :: body ->
        (fun () ->
          let fatals = ref [] in
          let warnings = ref [] in
          let fatal e = fatals := e :: !fatals in
          let warn e = warnings := e :: !warnings in
          let context = ref Context.lf in
          let slowdown = ref 7.0 in
          let saw_context = ref false in
          let saw_slowdown = ref false in
          let node_settings = Hashtbl.create 32 in
          let unit_settings = Hashtbl.create 32 in
          let node_histograms : (int, Histogram.t array) Hashtbl.t =
            Hashtbl.create 32
          in
          let node_paths : (int, Path_model.t) Hashtbl.t = Hashtbl.create 32 in
          let fp_checked = ref false in
          let saw_end = ref false in
          let tree_size = Call_tree.size tree in
          let node_known id ~what =
            if id >= 0 && id < tree_size then true
            else begin
              warn
                (Error.Tree_shape_drift
                   { path; node = id; detail = what ^ " for an unknown node" });
              false
            end
          in
          (* A validated setting: wrong arity and out-of-range values are
             fatal (a corrupt field, not a near-miss); in-range off-grid
             values are snapped with a diagnostic. *)
          let checked_setting ~where str k =
            let s = setting_of_string str in
            match Validate.setting ~where s with
            | Result.Error e -> fatal e
            | Result.Ok (repaired, ws) ->
                List.iter warn ws;
                k repaired
          in
          (match header with
          | "mcd-dvfs-plan 1" -> ()
          | found -> fatal (Error.Bad_header { path; found }));
          let line_no = ref 1 in
          (if !fatals = [] then
             List.iter
               (fun line ->
                 incr line_no;
                 let where = Printf.sprintf "%s:%d" path !line_no in
                 try
                   if !saw_end then
                     raise (Reject "content after the end-of-plan marker");
                   match String.split_on_char ' ' line with
                   | [ "end" ] -> saw_end := true
                   | [ "context"; name ] -> (
                       match Context.of_name name with
                       | c ->
                           saw_context := true;
                           context := c
                       | exception Not_found ->
                           raise (Reject (Printf.sprintf "unknown context %S" name)))
                   | [ "slowdown"; v ] ->
                       let v, w = Validate.slowdown_pct (parse_float v) in
                       Option.iter warn w;
                       saw_slowdown := true;
                       slowdown := v
                   | [ "tree"; fp ] ->
                       fp_checked := true;
                       let expected = fingerprint tree in
                       if fp <> expected then
                         fatal
                           (Error.Fingerprint_mismatch
                              { path; expected; found = fp })
                   | [ "node"; id; s ] ->
                       let id = parse_int id in
                       if node_known id ~what:"setting" then
                         checked_setting ~where s (fun repaired ->
                             Hashtbl.replace node_settings id repaired)
                   | [ "unit"; u; s ] ->
                       let u = unit_of_string u in
                       checked_setting ~where s (fun repaired ->
                           Hashtbl.replace unit_settings u repaired)
                   | [ "hist"; id; d; weights ] ->
                       let id = parse_int id and d = parse_int d in
                       if d < 0 || d >= Domain.count then
                         raise
                           (Reject (Printf.sprintf "bad domain index %d" d));
                       let weights = floats_of_string weights in
                       if Array.length weights <> Freq.num_steps then
                         raise
                           (Reject
                              (Printf.sprintf "%d histogram bins, expected %d"
                                 (Array.length weights) Freq.num_steps));
                       if node_known id ~what:"histogram" then begin
                         let hists =
                           match Hashtbl.find_opt node_histograms id with
                           | Some hs -> hs
                           | None ->
                               let hs =
                                 Array.init Domain.count (fun _ ->
                                     Histogram.create ~bins:Freq.num_steps)
                               in
                               Hashtbl.add node_histograms id hs;
                               hs
                         in
                         Array.iteri
                           (fun bin weight ->
                             let weight, w =
                               Validate.weight ~node:id ~domain:d ~bin weight
                             in
                             Option.iter warn w;
                             if weight > 0.0 then
                               Histogram.add hists.(d) ~bin ~weight)
                           weights
                       end
                   | "seg" :: id :: base :: signatures ->
                       let id = parse_int id in
                       if node_known id ~what:"path segment" then begin
                         let base = parse_float base in
                         if Float.is_nan base || base < 0.0 then
                           raise (Reject "negative or NaN segment base");
                         let seg =
                           {
                             Path_model.base_ps = base;
                             signatures = List.map floats_of_string signatures;
                           }
                         in
                         let pm =
                           match Hashtbl.find_opt node_paths id with
                           | Some pm -> pm
                           | None -> Path_model.empty
                         in
                         Hashtbl.replace node_paths id
                           (Path_model.add_segment pm seg)
                       end
                   | [] | [ "" ] -> ()
                   | directive :: _ ->
                       raise
                         (Reject (Printf.sprintf "unknown directive %S" directive))
                 with Reject reason ->
                   fatal
                     (Error.Malformed_line
                        { path; line = !line_no; content = line; reason }))
               body);
          if !fatals = [] && not !fp_checked then
            fatal (Error.Missing_fingerprint { path });
          if !fatals = [] && not !saw_end then
            fatal (Error.Truncated_file { path });
          (* Absent header lines are survivable (the defaults below are
             sane) but never silent: a plan written by [save] always has
             both, so a missing one means hand-editing or damage. *)
          if not !saw_context then
            warn
              (Error.Missing_header_field
                 {
                   path;
                   field = "context";
                   default = Context.lf.Context.name;
                 });
          if not !saw_slowdown then
            warn
              (Error.Missing_header_field
                 { path; field = "slowdown"; default = "7.0%" });
          match List.rev !fatals with
          | _ :: _ as errors -> Result.Error errors
          | [] ->
              Result.Ok
                {
                  plan =
                    {
                      Plan.tree;
                      context = !context;
                      slowdown_pct = !slowdown;
                      node_settings;
                      unit_settings;
                      node_histograms;
                      node_paths;
                    };
                  warnings = List.rev !warnings;
                })
          ()
  end

let load_result ~path ~tree =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error message ->
      Result.Error [ Error.Io_error { path; message } ]
  | content -> of_string_result ~path ~tree content

let load ~path ~tree =
  match load_result ~path ~tree with
  | Result.Ok { plan; warnings = _ } -> plan
  | Result.Error errors ->
      failwith
        ("Plan_io: "
        ^ String.concat "; " (List.map Error.to_string errors))

(* --- whole-plan validation --------------------------------------------- *)

let validate (plan : Plan.t) =
  let errors = ref [] in
  let emit e = errors := e :: !errors in
  let tree_size = Call_tree.size plan.Plan.tree in
  let check_setting ~where s =
    match Validate.setting ~where s with
    | Result.Error e -> emit e
    | Result.Ok (_, ws) -> List.iter emit ws
  in
  Hashtbl.iter
    (fun id s ->
      if id < 0 || id >= tree_size then
        emit
          (Error.Tree_shape_drift
             { path = "<plan>"; node = id; detail = "setting for an unknown node" });
      check_setting ~where:(Printf.sprintf "node %d" id) s)
    plan.Plan.node_settings;
  Hashtbl.iter
    (fun u s -> check_setting ~where:(unit_to_string u) s)
    plan.Plan.unit_settings;
  Hashtbl.iter
    (fun id hists ->
      if Array.length hists <> Domain.count then
        emit
          (Error.Bad_setting_arity
             {
               where = Printf.sprintf "node %d histograms" id;
               expected = Domain.count;
               found = Array.length hists;
             })
      else
        Array.iteri
          (fun d h ->
            if Histogram.bins h <> Freq.num_steps then
              emit
                (Error.Bad_histogram_shape
                   {
                     node = id;
                     expected_bins = Freq.num_steps;
                     found_bins = Histogram.bins h;
                   })
            else
              for bin = 0 to Freq.num_steps - 1 do
                let w = Histogram.get h ~bin in
                match Validate.weight ~node:id ~domain:d ~bin w with
                | _, Some e -> emit e
                | _, None -> ()
              done)
          hists)
    plan.Plan.node_histograms;
  (match Validate.slowdown_pct plan.Plan.slowdown_pct with
  | _, Some e -> emit e
  | _, None -> ());
  List.rev !errors
