(** Inter-domain synchronization, after Sjogren & Myers.

    When a value crosses a domain boundary it is captured by the first
    consumer clock edge following its production — unless the producing
    edge falls within the synchronization window (30% of the faster
    clock's period) of a consumer edge on either side, in which case
    capture slips one further consumer cycle. This is the mechanism that
    gives the MCD baseline its inherent ~1.3% performance cost. *)

val window_fraction : float
(** 0.30. *)

type stats = { mutable crossings : int; mutable penalties : int }

val create_stats : unit -> stats

val arrival :
  ?stats:stats ->
  consumer:Clock.t ->
  producer_period_ps:int ->
  t:Mcd_util.Time.t ->
  unit ->
  Mcd_util.Time.t
(** [arrival ~consumer ~producer_period_ps ~t ()] is the time at which a
    value produced at [t] (on a producer edge) becomes visible in the
    consumer domain. *)
