lib/util/rng.mli:
