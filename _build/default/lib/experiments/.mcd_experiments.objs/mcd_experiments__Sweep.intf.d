lib/experiments/sweep.mli: Mcd_workloads
