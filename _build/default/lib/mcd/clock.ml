module Time = Mcd_util.Time
module Rng = Mcd_util.Rng

type t = {
  mutable next : Time.t;
  mutable count : int;
  jitter_sigma : float;
  jitter_bound : float;
  rng : Rng.t;
  freq_mhz : now:Time.t -> float;
}

let default_jitter_bound = 110.0

let create ?(jitter_sigma_ps = default_jitter_bound /. 3.0) ~rng ~freq_mhz () =
  {
    next = Time.zero;
    count = 0;
    jitter_sigma = jitter_sigma_ps;
    jitter_bound = jitter_sigma_ps *. 3.0;
    rng;
    freq_mhz;
  }

let next_edge t = t.next
let cycles t = t.count

let period_ps t ~now = Freq.period_ps (t.freq_mhz ~now)

let advance t =
  let now = t.next in
  let period = period_ps t ~now in
  let jitter =
    if t.jitter_sigma <= 0.0 then 0
    else
      let j = Rng.normal t.rng ~mean:0.0 ~sigma:t.jitter_sigma in
      let j = Float.max (-.t.jitter_bound) (Float.min t.jitter_bound j) in
      int_of_float j
  in
  let step = max 1 (period + jitter) in
  t.next <- now + step;
  t.count <- t.count + 1

let project_edge t ~at_or_after =
  let period = max 1 (period_ps t ~now:t.next) in
  if at_or_after >= t.next then
    let delta = at_or_after - t.next in
    let k = (delta + period - 1) / period in
    t.next + (k * period)
  else
    (* Extrapolate the edge grid backward: results that completed in the
       past were captured by an edge that already occurred. *)
    let delta = t.next - at_or_after in
    let k = delta / period in
    t.next - (k * period)
