(** Run-level metrics and the comparison arithmetic used by every figure.

    All of the paper's figures report a policy run against the MCD
    baseline (all domains at full speed): performance degradation,
    energy savings, and energy x delay improvement. *)

type run = {
  runtime_ps : int;
  energy_pj : float;
  per_domain_pj : float array;  (** length 5: four domains + external *)
  instructions : int;  (** retired instructions *)
  cycles_front : int;  (** front-end domain cycles elapsed *)
  sync_crossings : int;
  sync_penalties : int;
  reconfigurations : int;
  instr_points : int;  (** instrumentation-point executions charged *)
  instr_overhead_ps : int;  (** total time charged to instrumentation *)
}

val ipc : run -> float
(** Retired instructions per front-end cycle. *)

val energy_delay : run -> float
(** Energy x delay product (pJ x s). *)

val perf_degradation_pct : baseline:run -> run -> float
(** Positive when the run is slower than the baseline. *)

val energy_savings_pct : baseline:run -> run -> float
(** Positive when the run uses less energy than the baseline. *)

val ed_improvement_pct : baseline:run -> run -> float
(** Positive when energy x delay improved over the baseline. *)

val encode : run -> string
(** Canonical text rendering for the result cache: one line per field in
    a fixed order, floats in lossless [%h] form, [end] trailer. [decode]
    inverts it bit for bit. *)

val decode : string -> (run, string) result
(** Parse an {!encode} payload. Malformed or truncated input yields
    [Error reason]; never raises. *)

val pp : Format.formatter -> run -> unit
