examples/quickstart.ml: Format Mcd_core Mcd_cpu Mcd_isa Mcd_power Mcd_profiling
