(** Two-level content-addressed result store.

    The first level is whatever in-memory memo table the caller already
    keeps (e.g. {!Mcd_experiments.Runner}'s domain-local tables); this
    module is the second, persistent level: objects live under
    [dir/objects/ab/cdef…] (first two hex digits of the key digest as a
    shard), each object embedding its full canonical key, payload byte
    count, and an [end] trailer.

    Durability rules:
    - {e writes are atomic}: content goes to a unique temp file in the
      target directory, then [Sys.rename]s into place, so concurrent
      writers under multi-domain or multi-process fan-out can never
      produce a torn object (same-key racers write identical bytes —
      results are deterministic functions of the key — so last rename
      winning is harmless);
    - {e reads are corruption-tolerant}: any malformation — truncation,
      damage, digest collision, unreadable file — logs a typed
      {!Mcd_robust.Error.Cache_corrupt} diagnostic to stderr, counts as
      a miss, and falls back to recompute (which heals the object by
      overwriting it). A cache can make a run faster, never wronger. *)

type t

val create : dir:string -> t
(** Open (creating directories as needed) a store rooted at [dir]. *)

val dir : t -> string

val metrics : t -> Mcd_obs.Metrics.t
(** The store's counter registry ([cache.hits], [cache.misses],
    [cache.corrupt], [cache.stores], [cache.bytes_read],
    [cache.bytes_written], [cache.gc_removed], [cache.gc_freed_bytes])
    for export alongside other observability metrics. *)

val find : t -> Key.t -> string option
(** The raw payload stored under the key, if present and intact. *)

val add : t -> Key.t -> string -> unit
(** Store a payload under a key (atomic tmp+rename; overwrites). An
    unwritable cache directory logs an I/O diagnostic and is otherwise
    ignored — computation results are never lost to cache failures. *)

val cached :
  t ->
  key:Key.t ->
  encode:('a -> string) ->
  decode:(string -> ('a, string) result) ->
  (unit -> 'a) ->
  'a
(** [cached t ~key ~encode ~decode compute] is the read-through /
    write-through composition: returns the decoded stored value on a
    clean hit; on a miss {e or any corruption} (container or payload)
    runs [compute], stores its encoding, and returns it. *)

type stats = {
  hits : int;
  misses : int;
  corrupt : int;
  stores : int;
  bytes_read : int;
  bytes_written : int;
  gc_removed : int;
  gc_freed_bytes : int;
}

val stats : t -> stats
(** This process's session counters (not persisted). *)

val disk_usage : t -> int * int
(** [(objects, bytes)] currently on disk. *)

val gc : ?max_bytes:int -> t -> int * int
(** Delete oldest-modified objects until at most [max_bytes] (default 0,
    i.e. clear everything) remain — the byte total comes from
    {!disk_usage}; returns [(removed, freed_bytes)], which is also
    accumulated into the [cache.gc_removed] / [cache.gc_freed_bytes]
    session counters. *)

(** {2 Process-wide default store}

    The CLI and bench resolve one store per process: an explicit
    [--cache-dir] flag wins, else the [MCD_DVFS_CACHE] environment
    variable, else caching is off. Set it before any parallel fan-out;
    worker domains only read the reference. *)

val set_default : t option -> unit

val default : unit -> t option
(** Resolves [MCD_DVFS_CACHE] on first call if {!set_default} was never
    invoked. *)
