lib/core/oracle.mli: Mcd_cpu Mcd_domains Mcd_isa
