(** The four independently clocked domains of the MCD processor.

    Main memory is external and always runs at full speed; it appears as
    the pseudo-domain {!External} in accounting but is never scaled. *)

type t =
  | Front_end  (** fetch, L1 I-cache, rename/dispatch, ROB *)
  | Integer  (** integer issue queue, ALUs, integer register file *)
  | Floating  (** FP issue queue, FP ALUs, FP register file *)
  | Memory  (** load/store unit, L1 D-cache, unified L2 *)

val all : t list
(** The four scalable domains, in a fixed canonical order. *)

val count : int
(** [List.length all = 4]. *)

val index : t -> int
(** Dense index 0..3, consistent with the order of [all]. *)

val of_index : int -> t
(** Inverse of [index]. Raises [Invalid_argument] out of range. *)

val name : t -> string
val pp : Format.formatter -> t -> unit

val relative_power : t -> float
(** Relative full-speed power weight of the domain, used to initialise
    shaker power factors. Sums to 1.0 across [all]. *)
