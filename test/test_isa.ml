(* Tests for the program IR, builder, and walker. *)

module B = Mcd_isa.Build
module P = Mcd_isa.Program
module Inst = Mcd_isa.Inst
module Walker = Mcd_isa.Walker

let input ?(scale = 2) ?(divergence = 0.0) ?(seed = 11) () =
  { P.input_name = "test"; scale; divergence; seed }

let simple_program () =
  B.program ~name:"simple" @@ fun b ->
  B.func b "leaf"
    [ B.loop b (P.Const 3) [ B.straight b ~length:10 () ] ];
  B.func b "main" [ B.call b "leaf"; B.call b "leaf" ];
  "main"

let walk_all ?input:(inp = input ()) program =
  let w = Walker.create program ~input:inp in
  let rec go acc =
    match Walker.next w with None -> List.rev acc | Some e -> go (e :: acc)
  in
  go []

let insts events =
  List.filter_map
    (function Walker.Inst d -> Some d | Walker.Marker _ -> None)
    events

let markers events =
  List.filter_map
    (function Walker.Marker m -> Some m | Walker.Inst _ -> None)
    events

(* --- builder / validation ------------------------------------------- *)

let test_build_simple () =
  let p = simple_program () in
  Alcotest.(check int) "two functions" 2 (List.length p.P.funcs);
  Alcotest.(check string) "main" "main" p.P.main

let test_validate_unresolved_callee () =
  Alcotest.check_raises "unresolved"
    (Invalid_argument "Program.validate: unresolved callee nowhere")
    (fun () ->
      ignore
        ( B.program ~name:"bad" @@ fun b ->
          B.func b "main" [ B.call b "nowhere" ];
          "main" ))

let test_validate_missing_main () =
  Alcotest.check_raises "no main"
    (Invalid_argument "Program.validate: main function not defined")
    (fun () ->
      ignore
        ( B.program ~name:"bad" @@ fun b ->
          B.func b "f" [ B.straight b ~length:1 () ];
          "main" ))

let test_validate_bad_fractions () =
  Alcotest.check_raises "fractions"
    (Invalid_argument "Program.validate: block fractions exceed 1")
    (fun () ->
      ignore
        ( B.program ~name:"bad" @@ fun b ->
          B.func b "main"
            [ B.straight b ~length:10 ~frac_load:0.7 ~frac_store:0.7 () ];
          "main" ))

let test_static_instructions () =
  let p = simple_program () in
  (* one block of 10 plus a statement slot for the loop and two calls *)
  Alcotest.(check bool) "positive" true (P.static_instructions p > 10)

let test_trip_count () =
  Alcotest.(check int) "const" 5 (P.trip_count (P.Const 5) (input ()) ~arg:0);
  Alcotest.(check int) "scaled" 23
    (P.trip_count (P.Scaled { base = 3; per_scale = 10 }) (input ()) ~arg:0);
  Alcotest.(check int) "arg scaled" 17
    (P.trip_count (P.Arg_scaled { base = 3; per_arg = 7 }) (input ()) ~arg:2)

(* --- walker --------------------------------------------------------- *)

let test_walker_deterministic () =
  let p = simple_program () in
  let a = walk_all p and b = walk_all p in
  Alcotest.(check int) "same length" (List.length a) (List.length b);
  List.iter2
    (fun x y ->
      match (x, y) with
      | Walker.Inst dx, Walker.Inst dy ->
          if dx <> dy then Alcotest.fail "instruction streams diverge"
      | Walker.Marker _, Walker.Marker _ -> ()
      | Walker.Inst _, Walker.Marker _ | Walker.Marker _, Walker.Inst _ ->
          Alcotest.fail "event kinds diverge")
    a b

let test_walker_seed_changes_stream () =
  let p =
    B.program ~name:"r" @@ fun b ->
    B.func b "main"
      [ B.straight b ~length:200 ~frac_load:0.5 ~mem:(P.Rand_in { region = 4096 }) () ];
    "main"
  in
  let a = insts (walk_all ~input:(input ~seed:1 ()) p) in
  let b = insts (walk_all ~input:(input ~seed:2 ()) p) in
  let addrs evs =
    List.filter_map
      (fun (d : Inst.dyn) -> if d.Inst.addr >= 0 then Some d.Inst.addr else None)
      evs
  in
  Alcotest.(check bool) "different addresses" true (addrs a <> addrs b)

let test_walker_marker_nesting () =
  let p = simple_program () in
  let depth = ref 0 and min_depth = ref 0 in
  List.iter
    (fun m ->
      (match m with
      | Walker.Enter_func _ | Walker.Enter_loop _ -> incr depth
      | Walker.Exit_func _ | Walker.Exit_loop _ -> decr depth);
      min_depth := min !min_depth !depth)
    (markers (walk_all p));
  Alcotest.(check int) "balanced" 0 !depth;
  Alcotest.(check int) "never negative" 0 !min_depth

let test_walker_instruction_count () =
  let p = simple_program () in
  let events = walk_all p in
  (* leaf: 3 iterations x (10 + 1 back edge) = 33 per call, 2 calls with
     call + return branches, i.e. 2 x (1 + 33 + 1) = 70 *)
  Alcotest.(check int) "dynamic instructions" 70 (List.length (insts events))

let test_walker_zero_trip_loop () =
  let p =
    B.program ~name:"z" @@ fun b ->
    B.func b "main"
      [
        B.loop b (P.Const 0) [ B.straight b ~length:10 () ];
        B.straight b ~length:5 ();
      ];
    "main"
  in
  let events = walk_all p in
  Alcotest.(check int) "only the block" 5 (List.length (insts events));
  (* a zero-trip loop emits no markers *)
  let loop_markers =
    List.filter
      (function
        | Walker.Enter_loop _ | Walker.Exit_loop _ -> true
        | Walker.Enter_func _ | Walker.Exit_func _ -> false)
      (markers events)
  in
  Alcotest.(check int) "no loop markers" 0 (List.length loop_markers)

let test_walker_loop_backedge_outcomes () =
  let p =
    B.program ~name:"l" @@ fun b ->
    B.func b "main" [ B.loop b (P.Const 4) [ B.straight b ~length:2 () ] ];
    "main"
  in
  let branches =
    List.filter (fun (d : Inst.dyn) -> d.Inst.klass = Inst.Branch)
      (insts (walk_all p))
  in
  Alcotest.(check int) "4 back edges" 4 (List.length branches);
  let outcomes = List.map (fun (d : Inst.dyn) -> d.Inst.taken) branches in
  Alcotest.(check (list bool)) "taken except last" [ true; true; true; false ]
    outcomes

let test_walker_arg_scaled () =
  let p =
    B.program ~name:"a" @@ fun b ->
    B.func b "callee"
      [ B.loop b (P.Arg_scaled { base = 1; per_arg = 2 }) [ B.straight b ~length:1 () ] ];
    B.func b "main" [ B.call b ~arg:0 "callee"; B.call b ~arg:3 "callee" ];
    "main"
  in
  let events = walk_all p in
  (* call1: 1 iter x (1 + backedge), call2: 7 x 2; plus 2 calls + 2 rets *)
  Alcotest.(check int) "arg changes trip count" (2 + 14 + 4)
    (List.length (insts events))

let test_walker_choose_divergence () =
  let p =
    B.program ~name:"c" @@ fun b ->
    B.func b "left" [ B.straight b ~length:3 () ];
    B.func b "right" [ B.straight b ~length:7 () ];
    B.func b "main"
      [
        B.loop b (P.Const 20)
          [
            B.choose b
              ~prob:(fun inp -> inp.P.divergence)
              [ B.call b "left" ]
              [ B.call b "right" ];
          ];
      ];
    "main"
  in
  let count_left inp =
    List.length
      (List.filter
         (function
           | Walker.Enter_func { fid; _ } ->
               fid = (P.find_func p "left").P.fid
           | Walker.Enter_loop _ | Walker.Exit_loop _ | Walker.Exit_func _ ->
               false)
         (markers (walk_all ~input:inp p)))
  in
  Alcotest.(check int) "divergence 0 never goes left" 0
    (count_left (input ~divergence:0.0 ()));
  Alcotest.(check int) "divergence 1 always goes left" 20
    (count_left (input ~divergence:1.0 ()))

let test_walker_call_markers_carry_sites () =
  let p = simple_program () in
  let sites =
    List.filter_map
      (function
        | Walker.Enter_func { site_id; _ } -> site_id
        | Walker.Exit_func _ | Walker.Enter_loop _ | Walker.Exit_loop _ ->
            None)
      (markers (walk_all p))
  in
  Alcotest.(check int) "two sited entries" 2 (List.length sites);
  Alcotest.(check bool) "distinct sites" true
    (List.nth sites 0 <> List.nth sites 1)

let test_walker_chase_dependence () =
  let p =
    B.program ~name:"chase" @@ fun b ->
    B.func b "main"
      [
        B.straight b ~length:300 ~frac_load:1.0
          ~mem:(P.Chase { region = 65536 })
          ();
      ];
    "main"
  in
  let loads =
    List.filter (fun (d : Inst.dyn) -> d.Inst.klass = Inst.Load)
      (insts (walk_all p))
  in
  (* after warmup, each load's address register is the previous load's
     destination *)
  let rec chained = function
    | (a : Inst.dyn) :: (b : Inst.dyn) :: rest ->
        (b.Inst.srcs.(0) = a.Inst.dst || a.Inst.dst < 0) && chained (b :: rest)
    | [ _ ] | [] -> true
  in
  (match loads with
  | _ :: rest -> Alcotest.(check bool) "pointer chain" true (chained rest)
  | [] -> Alcotest.fail "no loads");
  Alcotest.(check int) "all loads" 300 (List.length loads)

(* --- degenerate shapes the generator is allowed to emit -------------- *)

let test_walker_deep_nesting () =
  let depth = 64 in
  let p =
    B.program ~name:"deep" @@ fun b ->
    let rec nest d =
      if d = 0 then [ B.straight b ~length:1 () ]
      else [ B.loop b (P.Const 1) (nest (d - 1)) ]
    in
    B.func b "main" (nest depth);
    "main"
  in
  let events = walk_all p in
  (* one block instruction plus one back edge per loop level *)
  Alcotest.(check int) "instructions" (1 + depth)
    (List.length (insts events));
  let d = ref 0 and max_d = ref 0 and min_d = ref 0 in
  List.iter
    (fun m ->
      (match m with
      | Walker.Enter_func _ | Walker.Enter_loop _ -> incr d
      | Walker.Exit_func _ | Walker.Exit_loop _ -> decr d);
      max_d := max !max_d !d;
      min_d := min !min_d !d)
    (markers events);
  Alcotest.(check int) "balanced" 0 !d;
  Alcotest.(check int) "never negative" 0 !min_d;
  (* the function frame plus every loop level appears in the marker depth *)
  Alcotest.(check int) "full depth reached" (1 + depth) !max_d

let test_walker_zero_region_blocks () =
  (* region 0 (or below the stride) must not divide by zero or emit
     negative addresses, whatever the access pattern *)
  List.iter
    (fun (label, mem) ->
      let p =
        B.program ~name:label @@ fun b ->
        B.func b "main" [ B.straight b ~length:50 ~frac_load:0.8 ~mem () ];
        "main"
      in
      let ds = insts (walk_all p) in
      Alcotest.(check int) (label ^ " walks") 50 (List.length ds);
      List.iter
        (fun (d : Inst.dyn) ->
          if d.Inst.klass = Inst.Load then
            Alcotest.(check bool) (label ^ " address non-negative") true
              (d.Inst.addr >= 0))
        ds)
    [
      ("seq-region0", P.Seq_stride { stride = 8; region = 0 });
      ("rand-region0", P.Rand_in { region = 0 });
      ("chase-region0", P.Chase { region = 0 });
      ("rand-region1", P.Rand_in { region = 1 });
    ]

let test_walker_empty_periodic_pattern () =
  let p =
    B.program ~name:"per0" @@ fun b ->
    B.func b "main"
      [
        B.straight b ~length:30 ~frac_branch:0.4
          ~branch:(P.Periodic [||]) ();
      ];
    "main"
  in
  let branches =
    List.filter (fun (d : Inst.dyn) -> d.Inst.klass = Inst.Branch)
      (insts (walk_all p))
  in
  Alcotest.(check bool) "pattern branches exist" true (branches <> []);
  Alcotest.(check bool) "empty pattern defaults to taken" true
    (List.for_all (fun (d : Inst.dyn) -> d.Inst.taken) branches)

let test_walker_single_phase_program () =
  (* the smallest shape the generator can produce: one function, one
     block, no loops *)
  let p =
    B.program ~name:"single" @@ fun b ->
    B.func b "main" [ B.straight b ~length:12 () ];
    "main"
  in
  let events = walk_all p in
  Alcotest.(check int) "12 instructions" 12 (List.length (insts events));
  Alcotest.(check int) "enter/exit only" 2 (List.length (markers events))

let test_pc_spaces_disjoint () =
  let a = Walker.pc_of_block_slot ~block_id:100 ~slot:4095 in
  let b = Walker.pc_of_loop_branch ~loop_id:100 in
  let c = Walker.pc_of_call ~site_id:100 in
  let d = Walker.pc_of_return ~fid:100 in
  let all = [ a; b; c; d ] in
  Alcotest.(check int) "distinct" 4 (List.length (List.sort_uniq compare all))

let test_instructions_emitted_counter () =
  let p = simple_program () in
  let w = Walker.create p ~input:(input ()) in
  let rec drain n =
    match Walker.next w with
    | None -> n
    | Some (Walker.Inst _) -> drain (n + 1)
    | Some (Walker.Marker _) -> drain n
  in
  let n = drain 0 in
  Alcotest.(check int) "emitted matches stream" n
    (Walker.instructions_emitted w)

(* --- qcheck: random programs keep markers well nested ---------------- *)

let qcheck ?(seed = 0x15a) t =
  QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| seed |]) t

let print_random_program (prog, seed) =
  Printf.sprintf "seed=%d\n%s" seed
    (P.canonical prog ~input:(input ~seed ()))

let random_program_gen =
  QCheck.Gen.(
    let block_len = int_range 1 20 in
    map
      (fun (lens, trips, seed) ->
        let prog =
          B.program ~name:"rand" @@ fun b ->
          B.func b "leaf"
            [ B.loop b (P.Const trips) [ B.straight b ~length:(List.nth lens 0) () ] ];
          B.func b "mid"
            [
              B.call b "leaf";
              B.straight b ~length:(List.nth lens 1) ();
              B.loop b (P.Const (trips / 2)) [ B.call b "leaf" ];
            ];
          B.func b "main"
            [ B.call b "mid"; B.call b "leaf"; B.call b "mid" ];
          "main"
        in
        (prog, seed))
      (triple (list_repeat 2 block_len) (int_range 0 6) small_int))

let prop_random_walk_well_nested =
  QCheck.Test.make ~name:"random programs walk well-nested" ~count:100
    (QCheck.make ~print:print_random_program random_program_gen)
    (fun (prog, seed) ->
      let events = walk_all ~input:(input ~seed ()) prog in
      let depth = ref 0 in
      let ok = ref true in
      List.iter
        (fun m ->
          (match m with
          | Walker.Enter_func _ | Walker.Enter_loop _ -> incr depth
          | Walker.Exit_func _ | Walker.Exit_loop _ -> decr depth);
          if !depth < 0 then ok := false)
        (markers events);
      !ok && !depth = 0)

let prop_seq_numbers_dense =
  QCheck.Test.make ~name:"instruction seq numbers dense from 0" ~count:50
    (QCheck.make ~print:print_random_program random_program_gen)
    (fun (prog, seed) ->
      let ds = insts (walk_all ~input:(input ~seed ()) prog) in
      List.for_all2
        (fun (d : Inst.dyn) i -> d.Inst.seq = i)
        ds
        (List.init (List.length ds) Fun.id))

let suite =
  [
    ("build simple", `Quick, test_build_simple);
    ("validate unresolved callee", `Quick, test_validate_unresolved_callee);
    ("validate missing main", `Quick, test_validate_missing_main);
    ("validate bad fractions", `Quick, test_validate_bad_fractions);
    ("static instructions", `Quick, test_static_instructions);
    ("trip count", `Quick, test_trip_count);
    ("walker deterministic", `Quick, test_walker_deterministic);
    ("walker seed changes stream", `Quick, test_walker_seed_changes_stream);
    ("walker marker nesting", `Quick, test_walker_marker_nesting);
    ("walker instruction count", `Quick, test_walker_instruction_count);
    ("walker zero-trip loop", `Quick, test_walker_zero_trip_loop);
    ("walker back-edge outcomes", `Quick, test_walker_loop_backedge_outcomes);
    ("walker arg-scaled trips", `Quick, test_walker_arg_scaled);
    ("walker choose divergence", `Quick, test_walker_choose_divergence);
    ("walker call sites", `Quick, test_walker_call_markers_carry_sites);
    ("walker chase dependence", `Quick, test_walker_chase_dependence);
    ("walker deep nesting", `Quick, test_walker_deep_nesting);
    ("walker zero-region blocks", `Quick, test_walker_zero_region_blocks);
    ("walker empty periodic pattern", `Quick, test_walker_empty_periodic_pattern);
    ("walker single-phase program", `Quick, test_walker_single_phase_program);
    ("pc spaces disjoint", `Quick, test_pc_spaces_disjoint);
    ("instructions_emitted counter", `Quick, test_instructions_emitted_counter);
    qcheck prop_random_walk_well_nested;
    qcheck prop_seq_numbers_dense;
  ]
