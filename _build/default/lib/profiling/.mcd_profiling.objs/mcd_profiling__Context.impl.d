lib/profiling/context.ml: List
