lib/core/threshold.ml: Array Mcd_domains Mcd_util
