module Controller = Mcd_cpu.Controller
module Domain = Mcd_domains.Domain
module Freq = Mcd_domains.Freq
module Reconfig = Mcd_domains.Reconfig
module Ckey = Mcd_cache.Key

type params = {
  interval_cycles : int;
  l2_mpki_hi : float;
  l2_mpki_lo : float;
  step_mhz : int;
  busy_util : float;
  cooldown : int;
}

let default_params =
  {
    interval_cycles = 10_000;
    l2_mpki_hi = 6.0;
    l2_mpki_lo = 1.5;
    step_mhz = 100;
    busy_util = 0.70;
    cooldown = 2;
  }

let params_id p =
  [
    string_of_int p.interval_cycles;
    Ckey.float_param p.l2_mpki_hi;
    Ckey.float_param p.l2_mpki_lo;
    string_of_int p.step_mhz;
    Ckey.float_param p.busy_util;
    string_of_int p.cooldown;
  ]

let compute_domains = [ Domain.Integer; Domain.Floating ]

let controller ?(params = default_params) ?sink () =
  let cur = Array.make Domain.count Freq.fmax_mhz in
  let smooth_mpki = ref nan in
  let cooldown = Policy.Cooldown.create ~intervals:params.cooldown in
  let on_sample (s : Controller.sample) ~now =
    Policy.Cooldown.tick cooldown;
    let changed = ref false in
    let set d f' why =
      let i = Domain.index d in
      let f' = Freq.clamp f' in
      if f' <> cur.(i) && Policy.Cooldown.ready cooldown i then begin
        (match sink with
        | None -> ()
        | Some snk ->
            Mcd_obs.Sink.decision snk ~t_ps:now ~source:"cache-aware"
              ~trigger:Mcd_obs.Sink.Sample
              ~detail:
                (Printf.sprintf "%s %s %d->%d MHz" why (Domain.name d)
                   cur.(i) f')
              ());
        cur.(i) <- f';
        Policy.Cooldown.arm cooldown i;
        changed := true
      end
    in
    let kinsts = float_of_int (max 1 s.Controller.retired) /. 1000.0 in
    let raw_mpki = float_of_int s.Controller.l2_misses /. kinsts in
    (* smooth the miss rate: one interval of cold misses after a phase
       change should not read as a memory-bound phase *)
    let mpki =
      if Float.is_nan !smooth_mpki then raw_mpki
      else (0.5 *. raw_mpki) +. (0.5 *. !smooth_mpki)
    in
    smooth_mpki := mpki;
    (* the memory domain serves the miss traffic: scale it with its own
       backlog, but never below half speed while L1D misses are
       flowing — a slow L2 lengthens every miss's latency *)
    let mem_util = Policy.utilization s Domain.Memory in
    let mem_floor =
      if s.Controller.l1d_misses > 0 then (Freq.fmin_mhz + Freq.fmax_mhz) / 2
      else Freq.fmin_mhz
    in
    set Domain.Memory
      (max mem_floor
         (Freq.fmin_mhz
         + int_of_float
             (Float.min 1.0 mem_util
             *. float_of_int (Freq.fmax_mhz - Freq.fmin_mhz))))
      "mem-util";
    (* compute domains: when the window is memory-bound (high L2 MPKI)
       they mostly wait on fills, so cheap cycles are free savings —
       step down. When it is compute-bound, step back up toward full
       speed. A genuinely backlogged domain overrides the miss signal:
       starving it would stretch the critical path. *)
    List.iter
      (fun d ->
        let i = Domain.index d in
        let util = Policy.utilization s d in
        if util > params.busy_util then set d Freq.fmax_mhz "busy"
        else if mpki >= params.l2_mpki_hi then
          set d (cur.(i) - params.step_mhz) "mem-bound"
        else if mpki <= params.l2_mpki_lo then
          set d (cur.(i) + params.step_mhz) "compute-bound")
      compute_domains;
    if !changed then
      Some
        (Reconfig.make ~front_end:Freq.fmax_mhz
           ~integer:cur.(Domain.index Domain.Integer)
           ~floating:cur.(Domain.index Domain.Floating)
           ~memory:cur.(Domain.index Domain.Memory))
    else None
  in
  {
    Controller.name = "cache-aware";
    on_marker = (fun _ ~now:_ -> Controller.no_reaction);
    on_sample;
    sample_interval_cycles = params.interval_cycles;
  }

let policy ?label ?(params = default_params) () =
  Policy.make ~name:"cache-aware" ?label
    ~doc:"L2-miss-driven scaling: starved compute domains slow down"
    ~params:(params_id params) ~feedback:true
    ~cooldown_intervals:params.cooldown
    (fun ?sink () -> controller ~params ?sink ())
