lib/core/shaker.ml: Array Dag Float List Mcd_domains Mcd_util
