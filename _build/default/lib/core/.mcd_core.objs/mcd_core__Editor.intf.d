lib/core/editor.mli: Mcd_cpu Plan
