lib/util/chart.mli:
