module Workload = Mcd_workloads.Workload
module Suite = Mcd_workloads.Suite
module Policy = Mcd_control.Policy
module Policies = Mcd_control.Policies
module Table = Mcd_util.Table
module Stats = Mcd_util.Stats
module Json = Mcd_obs.Json

type entry = {
  policy : Policy.t;
  per_workload : (string * Runner.comparison) list;
  mean : Runner.comparison;
  rank : int;
  pareto : bool;
}

type t = { workloads : string list; entries : entry list }

(* The same five-benchmark subset the bench harness's --quick mode
   sweeps: one representative per suite corner (MediaBench int, GSM,
   video, SPEC int memory-bound, SPEC fp). *)
let quick_names = [ "adpcm decode"; "gsm encode"; "mpeg2 decode"; "mcf"; "applu" ]

let quick_workloads () =
  List.filter_map Suite.find_opt quick_names

let mean_of comparisons =
  {
    Runner.degradation_pct =
      Stats.mean (List.map (fun c -> c.Runner.degradation_pct) comparisons);
    savings_pct =
      Stats.mean (List.map (fun c -> c.Runner.savings_pct) comparisons);
    ed_improvement_pct =
      Stats.mean (List.map (fun c -> c.Runner.ed_improvement_pct) comparisons);
  }

(* [a] dominates [b] when it is no worse on both Pareto axes (less
   degradation, more savings) and strictly better on at least one. ED
   improvement is the ranking metric, not a Pareto axis: it is already
   a scalarisation of the other two. *)
let dominates a b =
  a.Runner.degradation_pct <= b.Runner.degradation_pct
  && a.Runner.savings_pct >= b.Runner.savings_pct
  && (a.Runner.degradation_pct < b.Runner.degradation_pct
     || a.Runner.savings_pct > b.Runner.savings_pct)

let run ?(policies = Policies.contenders ()) ?(workloads = Suite.all) () =
  (* fan out per workload: a worker simulates every contender on its
     benchmark, so the baseline run is computed once per worker and the
     long pole (one slow benchmark) bounds the sweep *)
  let columns =
    Runner.map_workloads
      (fun w ->
        let baseline = Runner.baseline w in
        ( w.Workload.name,
          List.map
            (fun p ->
              (p.Policy.label, Runner.compare_runs ~baseline (Runner.policy_run p w)))
            policies ))
      workloads
  in
  let unranked =
    List.map
      (fun p ->
        let id = p.Policy.label in
        let per_workload =
          List.map (fun (wname, cells) -> (wname, List.assoc id cells)) columns
        in
        let mean = mean_of (List.map snd per_workload) in
        { policy = p; per_workload; mean; rank = 0; pareto = false })
      policies
  in
  let sorted =
    List.sort
      (fun a b ->
        match
          compare b.mean.Runner.ed_improvement_pct
            a.mean.Runner.ed_improvement_pct
        with
        | 0 -> compare a.policy.Policy.label b.policy.Policy.label
        | c -> c)
      unranked
  in
  let entries =
    List.mapi
      (fun i e ->
        let pareto =
          not
            (List.exists
               (fun o -> o != e && dominates o.mean e.mean)
               sorted)
        in
        { e with rank = i + 1; pareto })
      sorted
  in
  { workloads = List.map (fun w -> w.Workload.name) workloads; entries }

let render t =
  let header =
    [ "rank"; "policy"; "degradation"; "energy savings"; "ExD improvement"; "pareto" ]
  in
  let rows =
    List.map
      (fun e ->
        [
          string_of_int e.rank;
          e.policy.Policy.label;
          Table.fmt_pct e.mean.Runner.degradation_pct;
          Table.fmt_pct e.mean.Runner.savings_pct;
          Table.fmt_pct e.mean.Runner.ed_improvement_pct;
          (if e.pareto then "*" else "");
        ])
      t.entries
  in
  Printf.sprintf
    "Tournament: %d policies x %d workloads (mean vs MCD baseline; * = on \
     the degradation/savings Pareto frontier)\n%s"
    (List.length t.entries)
    (List.length t.workloads)
    (Table.render ~header ~rows ())

let comparison_fields c =
  [
    ("degradation_pct", Json.Float c.Runner.degradation_pct);
    ("savings_pct", Json.Float c.Runner.savings_pct);
    ("ed_improvement_pct", Json.Float c.Runner.ed_improvement_pct);
  ]

let to_json t =
  Json.Obj
    [
      ("schema", Json.String "mcd-dvfs-tournament/1");
      ("workloads", Json.List (List.map (fun w -> Json.String w) t.workloads));
      ( "entries",
        Json.List
          (List.map
             (fun e ->
               Json.Obj
                 ([
                    ("rank", Json.Int e.rank);
                    ("policy", Json.String e.policy.Policy.label);
                    ("name", Json.String e.policy.Policy.name);
                    ( "params",
                      Json.List
                        (List.map
                           (fun p -> Json.String p)
                           e.policy.Policy.params) );
                    ("pareto", Json.Bool e.pareto);
                  ]
                 @ comparison_fields e.mean
                 @ [
                     ( "per_workload",
                       Json.List
                         (List.map
                            (fun (wname, c) ->
                              Json.Obj
                                (("workload", Json.String wname)
                                :: comparison_fields c))
                            e.per_workload) );
                   ]))
             t.entries) );
    ]
