lib/experiments/tables.mli: Mcd_workloads
