lib/mcd/sync.mli: Clock Mcd_util
