type ctx = {
  mutable next_block : int;
  mutable next_loop : int;
  mutable next_site : int;
  mutable next_fid : int;
  mutable funcs : (string * Program.func) list;
  name : string;
}

let program ~name define =
  let ctx =
    { next_block = 0; next_loop = 0; next_site = 0; next_fid = 0;
      funcs = []; name }
  in
  let main = define ctx in
  let prog : Program.t =
    { pname = ctx.name; funcs = List.rev ctx.funcs; main }
  in
  Program.validate prog;
  prog

let func ctx fname body =
  let fid = ctx.next_fid in
  ctx.next_fid <- fid + 1;
  ctx.funcs <- (fname, { Program.fname; fid; body }) :: ctx.funcs

let straight ctx ~length ?(frac_int_mult = 0.0) ?(frac_fp_alu = 0.0)
    ?(frac_fp_mult = 0.0) ?(frac_load = 0.0) ?(frac_store = 0.0)
    ?(frac_branch = 0.0)
    ?(mem = Program.Seq_stride { stride = 8; region = 256 * 1024 })
    ?(branch = Program.Biased 0.9) ?(dep_chain = 3.0) () =
  let block_id = ctx.next_block in
  ctx.next_block <- block_id + 1;
  Program.Straight
    {
      block_id;
      length;
      frac_int_mult;
      frac_fp_alu;
      frac_fp_mult;
      frac_load;
      frac_store;
      frac_branch;
      mem;
      branch;
      dep_chain;
    }

let loop ctx trips body =
  let loop_id = ctx.next_loop in
  ctx.next_loop <- loop_id + 1;
  Program.Loop { loop_id; trips; body }

let call ctx ?(arg = 0) callee =
  let site_id = ctx.next_site in
  ctx.next_site <- site_id + 1;
  Program.Call { site_id; callee; arg }

let choose ctx ~prob on_true on_false =
  let choose_id = ctx.next_site in
  ctx.next_site <- choose_id + 1;
  Program.Choose { choose_id; prob; on_true; on_false }
