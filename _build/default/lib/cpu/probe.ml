type stage = Fetch_s | Dispatch_s | Execute_s | Mem_s | Retire_s

type event = {
  seq : int;
  static_id : int;
  klass : Mcd_isa.Inst.iclass;
  stage : stage;
  domain : Mcd_domains.Domain.t;
  start : Mcd_util.Time.t;
  duration : Mcd_util.Time.t;
  dep_seqs : int array;
}

type t = {
  on_event : event -> unit;
  on_marker : Mcd_isa.Walker.marker -> seq:int -> unit;
}

let stage_name = function
  | Fetch_s -> "fetch"
  | Dispatch_s -> "dispatch"
  | Execute_s -> "execute"
  | Mem_s -> "mem"
  | Retire_s -> "retire"
