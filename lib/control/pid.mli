(** PID/feedback frequency controller.

    Each scaled domain runs an independent PID loop on the error
    between its observed queue utilisation and a setpoint, in the
    spirit of the CMP control-loop literature: proportional and
    derivative terms chase phase changes, the (clamped) integral term
    removes steady-state error, and the summed correction moves a
    continuous per-domain frequency command that is snapped to the
    legal grid. Writes are rate-limited by a per-domain
    {!Policy.Cooldown} so the loop cannot thrash the reconfiguration
    register. *)

type params = {
  interval_cycles : int;  (** sampling interval, front-end cycles *)
  setpoint : float;  (** target utilisation (backlog / capacity) *)
  kp : float;  (** proportional gain, frequency-range units *)
  ki : float;  (** integral gain *)
  kd : float;  (** derivative gain *)
  integral_clamp : float;  (** anti-windup bound on the integral term *)
  cooldown : int;  (** min sample intervals between writes per domain *)
}

val default_params : params

val controller :
  ?params:params -> ?sink:Mcd_obs.Sink.t -> unit -> Mcd_cpu.Controller.t
(** Fresh single-use controller; prefer {!policy}. *)

val params_id : params -> string list

val policy : ?label:string -> ?params:params -> unit -> Policy.t
(** Named ["pid"]; feedback, so always simulated exactly. *)
