(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Tables 1-4, Figures 4-12), the ablation benches from
   DESIGN.md, and — under --micro — Bechamel micro-benchmarks of the
   analysis kernels.

     dune exec bench/main.exe                 # everything
     dune exec bench/main.exe -- --only fig4  # one experiment
     dune exec bench/main.exe -- --quick      # reduced suite (CI-sized)
     dune exec bench/main.exe -- --jobs 4     # fan experiments out on 4 cores
     dune exec bench/main.exe -- --sample --json BENCH_pr7.json  # perf artifact
     dune exec bench/main.exe -- --cache-dir .cache     # cold+warm passes
     dune exec bench/main.exe -- --trace-dir traces     # obs trace bundles
     dune exec bench/main.exe -- --micro      # Bechamel kernels
     dune exec bench/main.exe -- --list       # available ids *)

module Suite = Mcd_workloads.Suite
module Runner = Mcd_experiments.Runner
module Headline = Mcd_experiments.Headline
module Context_sense = Mcd_experiments.Context_sense
module Sweep = Mcd_experiments.Sweep
module Tables = Mcd_experiments.Tables
module Ablations = Mcd_experiments.Ablations

(* Monotonic wall clock (CLOCK_MONOTONIC, ns). [Unix.gettimeofday] is
   subject to NTP steps, which would corrupt the wall-clock numbers
   recorded into the BENCH JSON artifact. *)
let now_s () = Int64.to_float (Monotonic_clock.now ()) /. 1e9

let quick_suite () =
  List.map Suite.by_name
    [ "adpcm decode"; "gsm encode"; "mpeg2 decode"; "mcf"; "applu" ]

let quick_contexts () =
  [ Mcd_profiling.Context.lfcp; Mcd_profiling.Context.lf;
    Mcd_profiling.Context.f ]

(* Shared row sets are cached at the harness level (keyed by --quick),
   not only in Runner: with --jobs > 1 the simulations happen on
   short-lived worker domains whose memo tables die with them, so
   without this cache fig5/fig6 would re-simulate everything fig4 just
   computed. The harness itself is single-domain, so plain laziness per
   key is safe. Tables register themselves so the warm-cache pass can
   reset every in-memory layer and measure the disk store alone. *)
let harness_resets : (unit -> unit) list ref = ref []

let harness_table () =
  let tbl = Hashtbl.create 2 in
  harness_resets := (fun () -> Hashtbl.reset tbl) :: !harness_resets;
  tbl

let reset_harness_caches () = List.iter (fun f -> f ()) !harness_resets

let cached tbl key f =
  match Hashtbl.find_opt tbl key with
  | Some v -> v
  | None ->
      let v = f () in
      Hashtbl.add tbl key v;
      v

let headline_rows =
  let tbl = harness_table () in
  fun ~quick ->
    cached tbl quick @@ fun () ->
    let workloads = if quick then quick_suite () else Suite.all in
    Headline.rows ~workloads ()

let context_rows =
  let tbl = harness_table () in
  fun ~quick ->
    cached tbl quick @@ fun () ->
    if quick then
      Context_sense.rows
        ~workloads:(List.map Suite.by_name [ "mpeg2 decode"; "adpcm decode" ])
        ~contexts:(quick_contexts ()) ()
    else Context_sense.rows ()

let table4_rows =
  let tbl = harness_table () in
  fun ~quick ->
    cached tbl quick @@ fun () ->
    let workloads = if quick then quick_suite () else Suite.all in
    Context_sense.rows ~workloads ~contexts:[ Mcd_profiling.Context.lfcp ] ()

let sweep_args ~quick =
  if quick then
    ( Some (List.map Suite.by_name [ "gsm encode"; "applu" ]),
      Some [ 4.0; 8.0; 12.0 ],
      Some [ 0.985; 0.93 ] )
  else (None, None, None)

(* fig10 and fig11 plot the same three curves *)
let sweep_curves =
  let tbl = Hashtbl.create 2 in
  fun ~quick ->
    cached tbl quick @@ fun () ->
    let workloads, deltas, guards = sweep_args ~quick in
    ( Sweep.offline_curve ?workloads ?deltas (),
      Sweep.online_curve ?workloads ?guards (),
      Sweep.profile_curve ?workloads ?deltas () )

type experiment = { id : string; descr : string; run : quick:bool -> string }

let experiments =
  [
    { id = "table1"; descr = "simulated configuration";
      run = (fun ~quick:_ -> Tables.table1 ()) };
    { id = "table2"; descr = "benchmarks and instruction windows";
      run = (fun ~quick:_ -> Tables.table2 ()) };
    { id = "table3"; descr = "call-tree nodes and train/ref coverage";
      run =
        (fun ~quick ->
          if quick then Tables.table3 ~workloads:(quick_suite ()) ()
          else Tables.table3 ()) };
    { id = "fig4"; descr = "performance degradation per benchmark";
      run = (fun ~quick -> Headline.fig4 (headline_rows ~quick)) };
    { id = "fig5"; descr = "energy savings per benchmark";
      run = (fun ~quick -> Headline.fig5 (headline_rows ~quick)) };
    { id = "fig6"; descr = "energy x delay improvement per benchmark";
      run = (fun ~quick -> Headline.fig6 (headline_rows ~quick)) };
    { id = "fig7"; descr = "min/avg/max summary incl. global DVS";
      run =
        (fun ~quick ->
          Headline.fig7 (Headline.summary (headline_rows ~quick))) };
    { id = "fig8"; descr = "context sensitivity: performance";
      run = (fun ~quick -> Context_sense.fig8 (context_rows ~quick)) };
    { id = "fig9"; descr = "context sensitivity: energy";
      run = (fun ~quick -> Context_sense.fig9 (context_rows ~quick)) };
    { id = "fig10"; descr = "energy savings vs slowdown sweep";
      run =
        (fun ~quick ->
          let offline, online, profile = sweep_curves ~quick in
          Sweep.fig10 ~offline ~online ~profile) };
    { id = "fig11"; descr = "energy x delay vs slowdown sweep";
      run =
        (fun ~quick ->
          let offline, online, profile = sweep_curves ~quick in
          Sweep.fig11 ~offline ~online ~profile) };
    { id = "fig12"; descr = "instrumentation cost by context";
      run = (fun ~quick -> Context_sense.fig12 (context_rows ~quick)) };
    { id = "table4"; descr = "static/dynamic points and overhead (L+F+C+P)";
      run = (fun ~quick -> Context_sense.table4 (table4_rows ~quick)) };
    { id = "ablation-sync"; descr = "MCD synchronization penalty";
      run =
        (fun ~quick ->
          if quick then
            Ablations.sync_penalty
              ~workloads:(List.map Suite.by_name [ "gsm encode"; "mcf" ])
              ()
          else Ablations.sync_penalty ()) };
    { id = "ablation-shaker"; descr = "shaker pass budget";
      run =
        (fun ~quick ->
          if quick then Ablations.shaker_passes ~passes:[ 1; 24 ] ()
          else Ablations.shaker_passes ()) };
    { id = "ablation-window"; descr = "long-running threshold sensitivity";
      run =
        (fun ~quick ->
          if quick then Ablations.long_threshold ~thresholds:[ 10_000 ] ()
          else Ablations.long_threshold ()) };
    { id = "ablation-core"; descr = "profile-based DVFS on a narrow core";
      run =
        (fun ~quick ->
          if quick then
            Ablations.narrow_core
              ~workloads:[ Suite.by_name "gsm encode" ]
              ()
          else Ablations.narrow_core ()) };
  ]

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the analysis kernels                    *)
(* ------------------------------------------------------------------ *)

let micro_benches () =
  let open Bechamel in
  let w = Suite.by_name "gsm encode" in
  let module W = Mcd_workloads.Workload in
  let tree () =
    Mcd_profiling.Call_tree.build w.W.program ~input:w.W.train
      ~context:Mcd_profiling.Context.lfcp ~max_insts:50_000 ()
  in
  let segment =
    lazy
      (let t = tree () in
       let col = Mcd_trace.Collector.create ~tree:t () in
       let _ =
         Mcd_cpu.Pipeline.run
           ~probe:(Mcd_trace.Collector.probe col)
           ~config:Mcd_cpu.Config.alpha21264_like ~program:w.W.program
           ~input:w.W.train ~max_insts:30_000 ()
       in
       match Mcd_trace.Collector.segments col with
       | (_, seg :: _) :: _ -> seg
       | (_, []) :: _ | [] -> [||])
  in
  let dag = lazy (Mcd_core.Dag.build (Lazy.force segment)) in
  let hist =
    lazy
      (let r = Mcd_core.Shaker.run (Lazy.force dag) in
       r.Mcd_core.Shaker.histograms.(0))
  in
  [
    Test.make ~name:"call-tree-build-50k" (Staged.stage tree);
    Test.make ~name:"dag-build"
      (Staged.stage (fun () -> Mcd_core.Dag.build (Lazy.force segment)));
    Test.make ~name:"shaker-run"
      (Staged.stage (fun () -> Mcd_core.Shaker.run (Lazy.force dag)));
    Test.make ~name:"path-signatures"
      (Staged.stage (fun () ->
           Mcd_core.Dag.path_signatures (Lazy.force dag)));
    Test.make ~name:"threshold-choose"
      (Staged.stage (fun () ->
           Mcd_core.Threshold.choose (Lazy.force hist) ~slowdown_pct:7.0));
    Test.make ~name:"pipeline-10k-insts"
      (Staged.stage (fun () ->
           Mcd_cpu.Pipeline.run ~config:Mcd_cpu.Config.alpha21264_like
             ~program:w.W.program ~input:w.W.train ~max_insts:10_000 ()));
    Test.make ~name:"tracker-walk-20k"
      (Staged.stage (fun () ->
           let t = tree () in
           let tracker = Mcd_profiling.Tracker.create t in
           let walker = Mcd_isa.Walker.create w.W.program ~input:w.W.train in
           let rec go n =
             if n < 20_000 then
               match Mcd_isa.Walker.next walker with
               | None -> ()
               | Some (Mcd_isa.Walker.Inst _) -> go (n + 1)
               | Some (Mcd_isa.Walker.Marker m) ->
                   ignore (Mcd_profiling.Tracker.on_marker tracker m);
                   go n
           in
           go 0));
    Test.make ~name:"coverage-compare"
      (Staged.stage (fun () ->
           let a = tree () and b = tree () in
           Mcd_profiling.Coverage.compare ~train:a ~reference:b));
    Test.make ~name:"editor-build"
      (Staged.stage (fun () ->
           let plan, _ =
             Mcd_core.Analyze.analyze ~program:w.W.program ~train:w.W.train
               ~context:Mcd_profiling.Context.lf ~profile_insts:30_000
               ~trace_insts:10_000 ()
           in
           Mcd_core.Editor.edit plan));
  ]

let run_micro () =
  let open Bechamel in
  let clock = Toolkit.Instance.monotonic_clock in
  List.iter
    (fun test ->
      let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 1.0) () in
      let raw = Benchmark.all cfg [ clock ] test in
      let results =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:false
             ~predictors:[| Measure.run |])
          clock raw
      in
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some (est :: _) -> Printf.printf "%-28s %12.0f ns/run\n%!" name est
          | Some [] | None -> Printf.printf "%-28s (no estimate)\n%!" name)
        results)
    (micro_benches ())

(* ------------------------------------------------------------------ *)
(* BENCH JSON artifact: wall-clock per experiment plus the simulated
   headline metrics, the repo's perf trajectory record.               *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Per-workload per-policy drift of the sampled headline numbers
   against the exact pass — the artifact's record that sampling stayed
   inside its accuracy budget. Percentages, so diffs are in points. *)
let drift_fields ~exact_rows ~sampled_rows =
  let diffs extract =
    List.concat_map
      (fun (r : Headline.row) ->
        match
          List.find_opt
            (fun (e : Headline.row) ->
              e.Headline.workload.Mcd_workloads.Workload.name
              = r.Headline.workload.Mcd_workloads.Workload.name)
            exact_rows
        with
        | None -> []
        | Some e ->
            List.map
              (fun kind -> Float.abs (extract (kind r) -. extract (kind e)))
              [
                (fun (x : Headline.row) -> x.Headline.offline);
                (fun x -> x.Headline.online);
                (fun x -> x.Headline.profile);
              ])
      sampled_rows
  in
  let max_of xs = List.fold_left Float.max 0.0 xs in
  Printf.sprintf
    "\"max_abs_degradation_pp\": %.6f, \"max_abs_savings_pp\": %.6f, \
     \"max_abs_ed_pp\": %.6f"
    (max_of (diffs (fun c -> c.Runner.degradation_pct)))
    (max_of (diffs (fun c -> c.Runner.savings_pct)))
    (max_of (diffs (fun c -> c.Runner.ed_improvement_pct)))

let write_json ~path ~quick ~jobs ~timings ~total_s ~warm ~sample ~exact =
  let rows = headline_rows ~quick in
  let cmp_fields (c : Runner.comparison) =
    Printf.sprintf
      "\"degradation_pct\": %.6f, \"savings_pct\": %.6f, \
       \"ed_improvement_pct\": %.6f"
      c.Runner.degradation_pct c.Runner.savings_pct c.Runner.ed_improvement_pct
  in
  let workload_json (r : Headline.row) =
    Printf.sprintf
      "    {\"name\": \"%s\", \"offline\": {%s}, \"online\": {%s}, \
       \"profile_lf\": {%s}}"
      (json_escape r.Headline.workload.Mcd_workloads.Workload.name)
      (cmp_fields r.Headline.offline)
      (cmp_fields r.Headline.online)
      (cmp_fields r.Headline.profile)
  in
  let timing_json (id, seconds) =
    let exact_col =
      match exact with
      | None -> ""
      | Some (exact_timings, _, _) -> (
          match List.assoc_opt id exact_timings with
          | Some s -> Printf.sprintf ", \"exact_wall_s\": %.3f" s
          | None -> "")
    in
    let warm_col =
      match warm with
      | None -> ""
      | Some (warm_timings, _, _) -> (
          match List.assoc_opt id warm_timings with
          | Some s -> Printf.sprintf ", \"warm_wall_s\": %.3f" s
          | None -> "")
    in
    Printf.sprintf "    {\"id\": \"%s\", \"wall_s\": %.3f%s%s}"
      (json_escape id) seconds exact_col warm_col
  in
  let avg extract kind =
    Mcd_util.Stats.mean (List.map (fun r -> extract (kind r)) rows)
  in
  let avg_json name kind =
    Printf.sprintf
      "    \"%s\": {\"degradation_pct\": %.6f, \"savings_pct\": %.6f, \
       \"ed_improvement_pct\": %.6f}"
      name
      (avg (fun c -> c.Runner.degradation_pct) kind)
      (avg (fun c -> c.Runner.savings_pct) kind)
      (avg (fun c -> c.Runner.ed_improvement_pct) kind)
  in
  let warm_fields =
    match warm with
    | None -> ""
    | Some (_, warm_total_s, identical) ->
        Printf.sprintf
          "  \"warm_total_wall_s\": %.3f,\n\
          \  \"warm_outputs_identical\": %b,\n"
          warm_total_s identical
  in
  let exact_fields =
    match exact with
    | None -> ""
    | Some (_, exact_total_s, exact_rows) ->
        Printf.sprintf
          "  \"sampled_vs_exact\": {\"exact_total_wall_s\": %.3f, \
           \"cold_speedup\": %.3f, %s},\n"
          exact_total_s
          (exact_total_s /. Float.max total_s 1e-9)
          (drift_fields ~exact_rows ~sampled_rows:rows)
  in
  let oc = open_out path in
  Printf.fprintf oc
    "{\n\
    \  \"schema\": \"mcd-dvfs-bench/4\",\n\
    \  \"mode\": \"%s\",\n\
    \  \"quick\": %b,\n\
    \  \"jobs\": %d,\n\
    \  \"host_cores\": %d,\n\
    \  \"total_wall_s\": %.3f,\n\
     %s%s\
    \  \"experiments\": [\n%s\n  ],\n\
    \  \"headline_avg\": {\n%s\n  },\n\
    \  \"headline_workloads\": [\n%s\n  ]\n\
     }\n"
    (if sample then "sampled" else "exact")
    quick jobs
    (Mcd_util.Par.recommended_jobs ())
    total_s warm_fields exact_fields
    (String.concat ",\n" (List.map timing_json (List.rev timings)))
    (String.concat ",\n"
       [
         avg_json "offline" (fun r -> r.Headline.offline);
         avg_json "online" (fun r -> r.Headline.online);
         avg_json "profile_lf" (fun r -> r.Headline.profile);
       ])
    (String.concat ",\n" (List.map workload_json rows));
  close_out oc;
  Printf.printf "wrote %s\n%!" path

(* --trace-dir: after the experiments, re-run the quick/full suite's
   profile policy with the observability sink attached and export one
   trace bundle per workload. Separate passes on purpose — the traced
   runs bypass Runner's memo tables, so the timed experiments above
   stay untraced and their wall clock honest. *)
let sanitize_name name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> c
      | _ -> '-')
    name

let trace_suite ~quick ~dir =
  let workloads = if quick then quick_suite () else Suite.all in
  let domain_names =
    Array.of_list (List.map Mcd_domains.Domain.name Mcd_domains.Domain.all)
  in
  List.iter
    (fun w ->
      let name = w.Mcd_workloads.Workload.name in
      let sink = Mcd_obs.Sink.create ~domains:Mcd_domains.Domain.count () in
      let t0 = now_s () in
      let _run = Runner.observed_run ~sink w in
      let dt = now_s () -. t0 in
      let sub = Filename.concat dir (sanitize_name name) in
      ignore (Mcd_obs.Export.write_dir ~domain_names ~dir:sub sink : string list);
      Printf.printf "traced %-16s -> %s (%.1fs, %d samples, %d events)\n%!"
        name sub dt
        (Mcd_obs.Series.length (Mcd_obs.Sink.series sink))
        (List.length (Mcd_obs.Sink.events sink)))
    workloads

let run_experiments only quick list_only micro jobs json_path trace_dir
    cache_dir fresh_cache sample =
  if list_only then begin
    List.iter (fun e -> Printf.printf "%-16s %s\n" e.id e.descr) experiments;
    `Ok ()
  end
  else if micro then begin
    run_micro ();
    `Ok ()
  end
  else begin
    Runner.set_jobs jobs;
    (match cache_dir with
    | Some dir ->
        Mcd_cache.Store.set_default (Some (Mcd_cache.Store.create ~dir))
    | None -> ignore (Mcd_cache.Store.default () : Mcd_cache.Store.t option));
    (match Mcd_cache.Store.default () with
    | Some store when fresh_cache ->
        let removed, freed = Mcd_cache.Store.gc store in
        Printf.printf "fresh cache %s: removed %d objects (%d bytes)\n%!"
          (Mcd_cache.Store.dir store) removed freed
    | _ -> ());
    let selected =
      match only with
      | [] -> experiments
      | ids ->
          List.map
            (fun id ->
              match List.find_opt (fun e -> e.id = id) experiments with
              | Some e -> e
              | None ->
                  Printf.eprintf "unknown experiment id: %s (try --list)\n"
                    id;
                  exit 2)
            ids
    in
    let run_pass ~tag =
      let t_start = now_s () in
      let results =
        List.map
          (fun e ->
            let t0 = now_s () in
            let out = e.run ~quick in
            let dt = now_s () -. t0 in
            (match tag with
            | Some t -> Printf.printf "=== %s %s: %.1fs\n%!" t e.id dt
            | None ->
                Printf.printf "=== %s: %s (%.1fs)\n%s\n%!" e.id e.descr dt out);
            (e.id, dt, out))
          selected
      in
      (results, now_s () -. t_start)
    in
    (* Under --sample, run an exact cold pass first: its headline rows
       are the reference the sampled rows are drifted against, and its
       wall clocks land in the artifact's exact_wall_s column. Exact
       and sampled results live under disjoint cache keys, so the
       sampled cold pass below stays genuinely cold. *)
    let exact =
      if not sample then None
      else begin
        Runner.set_sim_mode Runner.Exact;
        Printf.printf "=== exact pass (drift reference for --sample)\n%!";
        let results, total = run_pass ~tag:(Some "exact") in
        let rows = headline_rows ~quick in
        Runner.clear_caches ();
        reset_harness_caches ();
        Runner.set_sim_mode
          (Runner.Sampled Mcd_cpu.Sampler.default_params);
        Some (List.map (fun (id, dt, _) -> (id, dt)) results, total, rows)
      end
    in
    let cold, cold_total = run_pass ~tag:None in
    (* With a persistent store active, run everything a second time with
       every in-memory layer dropped: what remains is the disk cache.
       Byte-comparing the rendered tables is the cold-vs-warm
       determinism check — a decode bug can't slip through as a
       plausible-looking number. *)
    let warm =
      match Mcd_cache.Store.default () with
      | None -> None
      | Some store ->
          Printf.printf
            "=== warm pass (memo tables cleared; serving from %s)\n%!"
            (Mcd_cache.Store.dir store);
          Runner.clear_caches ();
          reset_harness_caches ();
          let warm_results, warm_total = run_pass ~tag:(Some "warm") in
          let identical =
            List.for_all2
              (fun (_, _, a) (_, _, b) -> String.equal a b)
              cold warm_results
          in
          let s = Mcd_cache.Store.stats store in
          Printf.printf
            "warm pass: %.1fs vs cold %.1fs (%.0f%%), outputs %s \
             (cache: %d hits, %d misses, %d corrupt)\n%!"
            warm_total cold_total
            (100.0 *. warm_total /. Float.max cold_total 1e-9)
            (if identical then "identical" else "DIFFER")
            s.Mcd_cache.Store.hits s.Mcd_cache.Store.misses
            s.Mcd_cache.Store.corrupt;
          if not identical then begin
            List.iter2
              (fun (id, _, a) (_, _, b) ->
                if not (String.equal a b) then
                  Printf.eprintf "cold/warm mismatch in %s\n" id)
              cold warm_results;
            exit 1
          end;
          (* The disk cache must actually pay for itself: any
             experiment whose cold pass was substantial has every
             simulation cached, so its warm replay must come in well
             under cold. Tables 1-3 render live (nothing cache-backed)
             and stay exempt. *)
          let warm_exempt = [ "table1"; "table2"; "table3" ] in
          let violations =
            List.concat
              (List.map2
                 (fun (id, cold_dt, _) (_, warm_dt, _) ->
                   if
                     cold_dt >= 1.0
                     && (not (List.mem id warm_exempt))
                     && warm_dt > 0.5 *. cold_dt
                   then [ (id, cold_dt, warm_dt) ]
                   else [])
                 cold warm_results)
          in
          if violations <> [] then begin
            List.iter
              (fun (id, c, w) ->
                Printf.eprintf
                  "warm pass not faster in %s: cold %.1fs, warm %.1fs\n" id c
                  w)
              violations;
            exit 1
          end;
          Some
            ( List.map (fun (id, dt, _) -> (id, dt)) warm_results,
              warm_total,
              identical )
    in
    (match json_path with
    | None -> ()
    | Some path ->
        let timings = List.rev_map (fun (id, dt, _) -> (id, dt)) cold in
        write_json ~path ~quick ~jobs ~timings ~total_s:cold_total ~warm
          ~sample ~exact);
    (match trace_dir with
    | None -> ()
    | Some dir -> trace_suite ~quick ~dir);
    `Ok ()
  end

let () =
  let open Cmdliner in
  let only =
    Arg.(
      value & opt_all string []
      & info [ "only" ] ~docv:"ID"
          ~doc:"Run only the given experiment (repeatable).")
  in
  let quick =
    Arg.(
      value & flag
      & info [ "quick" ] ~doc:"Reduced benchmark subset for fast runs.")
  in
  let list_only =
    Arg.(value & flag & info [ "list" ] ~doc:"List experiment ids.")
  in
  let micro =
    Arg.(
      value & flag
      & info [ "micro" ]
          ~doc:"Run Bechamel micro-benchmarks of the analysis kernels.")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Fan experiment sweeps out over $(docv) OCaml domains \
             (default 1 = sequential; 0 = all cores). Output is \
             byte-identical at any jobs count.")
  in
  let json =
    Arg.(
      value & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:
            "Write wall-clock per experiment and the simulated headline \
             metrics to $(docv) (the perf trajectory artifact).")
  in
  let trace_dir =
    Arg.(
      value & opt (some string) None
      & info [ "trace-dir" ] ~docv:"DIR"
          ~doc:
            "After the experiments, re-run the suite's profile policy with \
             the observability sink attached and write one trace bundle \
             (metrics.jsonl, series.csv, trace.json) per workload under \
             $(docv).")
  in
  let cache_dir =
    Arg.(
      value & opt (some string) None
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:
            "Persistent result cache directory (overrides the \
             $(b,MCD_DVFS_CACHE) environment variable). With a cache \
             active the selected experiments run twice — a cold pass, \
             then a warm pass with every in-memory memo cleared so only \
             the disk store serves — and the JSON artifact records both \
             wall clocks. The run fails if the two passes are not \
             byte-identical.")
  in
  let fresh_cache =
    Arg.(
      value & flag
      & info [ "fresh-cache" ]
          ~doc:"Empty the cache store before the cold pass.")
  in
  let sample =
    Arg.(
      value
      & vflag false
          [
            ( true,
              info [ "sample" ]
                ~doc:
                  "Run production simulations under phase sampling \
                   ($(b,Mcd_cpu.Sampler) defaults): repeating call-tree \
                   phases are simulated once per frequency-vector \
                   signature and extrapolated. An exact cold pass runs \
                   first as the drift reference; the JSON artifact gains \
                   exact_wall_s and sampled_vs_exact drift columns. \
                   Sampled results are cached under their own keys and \
                   never mix with exact ones." );
            ( false,
              info [ "exact" ]
                ~doc:"Exact cycle-level simulation (the default)." );
          ])
  in
  let jobs_resolved =
    Term.(
      const (fun j -> if j <= 0 then Mcd_util.Par.recommended_jobs () else j)
      $ jobs)
  in
  let term =
    Term.(
      ret
        (const run_experiments $ only $ quick $ list_only $ micro
       $ jobs_resolved $ json $ trace_dir $ cache_dir $ fresh_cache $ sample))
  in
  let info =
    Cmd.info "mcd-bench"
      ~doc:"Regenerate the paper's tables and figures on the simulator"
  in
  exit (Cmd.eval (Cmd.v info term))
