(** The mcd-serve wire protocol.

    A versioned line protocol over a Unix-domain stream socket. Both
    directions speak single-line messages of space-separated tokens: a
    leading verb, then [key=value] pairs. Values are percent-encoded
    (space, ['%'], newline), so workload names like ["adpcm decode"]
    travel as one token. Replies that carry a payload (a run result, a
    metrics dump) send a header line announcing the byte count, then
    exactly that many raw bytes, then an ["end\n"] trailer — the same
    framing discipline as {!Mcd_cache.Store} objects, so truncation is
    always detectable.

    The grammar (version 1):
    {v
    greeting  ::= "mcd-serve/1 ready workers=N queue-max=N"
    command   ::= "ping" | "stats" | "drain" | "quit"
                | "submit pri=P workload=W policy=L context=C slowdown=F"
                | "status id=N" | "wait id=N" | "result id=N"
    reply     ::= "pong" | "draining"
                | "queued id=N digest=H coalesced=B"
                | "status id=N state=S [msg=M]"
                | "payload id=N bytes=N"   (then payload, then "end\n")
                | "stats-payload bytes=N"  (then payload, then "end\n")
                | "error code=E ..."
    v}

    {b Pipelined framing.} Any command may additionally carry a
    [seq=N] token (rendered straight after the verb); the reply that
    answers it echoes the same [seq] — including a [wait] answer that
    the server defers until the job turns terminal. A client may
    therefore keep any number of commands in flight on one connection
    and match replies by seq regardless of arrival order; commands
    without [seq] keep the strict request/reply ordering a one-shot
    client expects. Both are version-1 grammar: unknown [key=value]
    tokens were always ignored, so a seq-free peer interoperates.

    This module is pure — parsing and rendering only, no I/O — so both
    endpoints and the test suite share one grammar definition. *)

val version : int
(** 1. Bump on any incompatible grammar change; the greeting carries it
    and {!Client.connect} refuses a mismatch. *)

(** {2 Requests} *)

type priority = High | Normal | Low

val priority_name : priority -> string
val priority_of_name : string -> priority option

val priority_level : priority -> int
(** 0 for [High] through 2 for [Low] — the job-queue level. *)

type policy = Baseline | Offline | Online | Profile

val policy_name : policy -> string
val policy_of_name : string -> policy option

type request = {
  workload : string;  (** Table-2 benchmark name, e.g. ["adpcm decode"] *)
  policy : policy;
  context : string;  (** calling-context name, e.g. ["L+F"] *)
  slowdown_pct : float;
}

val request :
  ?policy:policy -> ?context:string -> ?slowdown_pct:float -> string -> request
(** A request for the named workload; defaults [Profile], ["L+F"], the
    paper's 7% operating point. *)

(** {2 Messages} *)

type command =
  | Ping
  | Submit of { priority : priority; request : request }
  | Status of int
  | Wait of int  (** reply is deferred until the job is terminal *)
  | Result of int
  | Stats
  | Drain
  | Quit

type state = Queued | Running | Done | Failed of string

val state_name : state -> string

type reject =
  | Overloaded of { queue_depth : int; limit : int; retry_after_ms : int }
      (** admission control: back off [retry_after_ms] and retry *)
  | Draining
  | Bad_request of string
  | Unknown_job of int
  | Job_failed of { id : int; message : string }
  | Deadline of { id : int; deadline_ms : int }
      (** the job's compute outran the server's per-job deadline; the
          job failed typed and the result (if the worker ever finishes)
          is discarded *)
  | Not_done of int

type reply =
  | Ready of { version : int; workers : int; queue_max : int }
  | Pong
  | Queued_reply of { id : int; digest : string; coalesced : bool }
  | Status_reply of { id : int; state : state }
  | Payload of { id : int; bytes : int }
  | Stats_payload of { bytes : int }
  | Draining_reply
  | Rejected of reject

val render_command : ?seq:int -> command -> string
(** Without the trailing newline. [seq] tags the command for pipelined
    correlation; the answering reply echoes it. *)

val parse_command : string -> (command * int option, string) result
(** The command plus its [seq] tag, when the sender attached one. *)

val render_reply : ?seq:int -> reply -> string
val parse_reply : string -> (reply * int option, string) result

val error_of_reject : reject -> Mcd_robust.Error.t
(** The typed diagnostic a rejection maps to — [Overloaded] and
    [Draining] carry exit code 4, the rest follow the usual
    validation/runtime classes. *)

(** {2 Incremental reply framing}

    The receive half of a pipelined connection: feed raw socket bytes
    in whatever chunks the kernel delivers, take complete frames out.
    A frame is a reply line plus — for [Payload]/[Stats_payload]
    headers — its byte-counted body, with the ["end\n"] trailer
    verified and stripped. Both endpoints' wire reading and the qcheck
    chunking tests share this one decoder. *)
module Frames : sig
  type frame = {
    reply : reply;
    seq : int option;
    body : string option;  (** payload bytes, for payload-carrying replies *)
  }

  type t

  val default_max_payload : int
  (** 64 MiB. *)

  val create : ?max_payload:int -> unit -> t
  (** A payload header announcing more than [max_payload] bytes is a
      decode error — the frame is refused before any body is
      buffered, so a rogue header cannot balloon memory. *)

  val feed : t -> string -> unit
  (** Append a chunk of received bytes. Chunk boundaries are
      arbitrary: mid-token, mid-body, anywhere. *)

  val next : t -> [ `Frame of frame | `Await | `Error of string ]
  (** The next complete frame, [`Await] when more bytes are needed.
      [`Error] is terminal — framing has desynchronized (unparseable
      line, bad trailer, oversized payload) and the connection must be
      closed; every later [next] repeats the error. *)

  val buffered : t -> int
  (** Bytes fed but not yet consumed by [next]. *)
end

(** {2 Token-grammar helpers}

    The [key=value] token vocabulary, shared with {!Journal} so the
    job journal's record bodies speak the same escaped grammar as the
    wire. *)

val encode_value : string -> string
(** Percent-encode space, ['%'] and newline. *)

val decode_value : string -> (string, string) result

val split : string -> string list
(** Tokens of a line (runs of spaces collapse). *)

val fields : string list -> (string * string) list
(** The [key=value] tokens; unknown keys are the caller's to ignore,
    duplicates keep the first occurrence. *)

val field : string -> (string * string) list -> (string, string) result
val int_field : string -> (string * string) list -> (int, string) result
val float_field : string -> (string * string) list -> (float, string) result
