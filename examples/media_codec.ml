(* Context definitions on a media workload.

   mpeg2 decode is the paper's show-case for calling-context tracking:
   production runs decode B-pictures through call chains the training
   input never exercised. Path-tracking contexts leave those paths at
   the enclosing setting (lower risk, less savings); L+F and F
   reconfigure the familiar subroutines regardless of how they were
   reached (more savings, a little more slowdown). This example prints
   the trade-off for all six context definitions — Figures 8/9 in
   miniature.

     dune exec examples/media_codec.exe *)

module Suite = Mcd_workloads.Suite
module Workload = Mcd_workloads.Workload
module Context = Mcd_profiling.Context
module Runner = Mcd_experiments.Runner
module Plan = Mcd_core.Plan
module Table = Mcd_util.Table

let () =
  let w = Suite.by_name "mpeg2 decode" in
  Format.printf "benchmark: %s — %s@.@." w.Workload.name w.Workload.trait;
  let baseline = Runner.baseline w in
  let rows =
    List.map
      (fun ctx ->
        let pr = Runner.profile_run w ~context:ctx ~train:`Train in
        let plan = Lazy.force pr.Runner.plan in
        let c = Runner.compare_runs ~baseline pr.Runner.run in
        [
          ctx.Context.name;
          Table.fmt_pct c.Runner.degradation_pct;
          Table.fmt_pct c.Runner.savings_pct;
          Table.fmt_pct c.Runner.ed_improvement_pct;
          string_of_int (Plan.static_reconfig_points plan);
          string_of_int (Plan.static_instr_points plan);
          string_of_int pr.Runner.run.Mcd_power.Metrics.reconfigurations;
        ])
      Context.all
  in
  print_string
    (Table.render
       ~header:
         [
           "context"; "slowdown"; "energy saved"; "ExD"; "static reconf";
           "static instr"; "dyn reconf";
         ]
       ~rows ());
  print_newline ();
  print_endline
    "Path-tracking contexts do not reconfigure on untrained B-frame paths;\n\
     L+F and F always reconfigure subroutines that were hot in training.\n\
     The paper recommends L+F: comparable results, minimal instrumentation."
