(** Call trees (phase 1 of the profiling pipeline).

    A call tree is built from the marker stream of a training run. Each
    node is a subroutine or loop *in context*: the path from the root
    captures the callers (and, when the context tracks them, the call
    sites) on the way back to main. Multiple dynamic instances of the
    same path are superimposed on one node; recursion is folded into the
    initial call's node. Nodes are annotated with dynamic instance
    counts and instruction totals, from which the long-running nodes —
    the candidates for reconfiguration — are identified: a node is long
    running when its average instance, excluding instructions executed
    in long-running descendants, meets the threshold (10,000 instructions
    in the paper). *)

type kind =
  | Root
  | Func_node of { fid : int; site : int }
      (** [site] is the distinguishing call-site id, or [-1] when the
          context does not track sites (or for the program entry) *)
  | Loop_node of { loop_id : int }

type node = {
  id : int;
  kind : kind;
  parent : int;  (** node id; [-1] for the root *)
  depth : int;
  mutable children : (kind * int) list;
  mutable instances : int;
  mutable total_insts : int;  (** includes instructions of descendants *)
  mutable long : bool;
  mutable reaches_long : bool;
      (** true when the node is long running or has a long-running
          descendant — i.e. run-time path tracking must instrument it *)
}

type t

val default_threshold : int
(** 10_000 instructions. *)

val build :
  Mcd_isa.Program.t ->
  input:Mcd_isa.Program.input ->
  context:Context.t ->
  ?threshold:int ->
  max_insts:int ->
  unit ->
  t
(** Walk the program (no timing simulation — this is the ATOM phase) for
    at most [max_insts] dynamic instructions and build the annotated
    tree under [Context.tree_context context]. *)

val context : t -> Context.t
(** The tree context actually used (paths always tracked). *)

val root : t -> int
val node : t -> int -> node
val size : t -> int
(** Number of nodes, including the artificial root. *)

val child : t -> int -> kind -> int option
val iter : t -> f:(node -> unit) -> unit

val long_nodes : t -> node list
val long_count : t -> int

val instructions_profiled : t -> int

(** Static units: the subroutine or loop a tree node corresponds to. *)
type static_unit = Func_unit of int | Loop_unit of int

val static_unit_of : kind -> static_unit option
(** [None] only for [Root]. *)

val long_static_units : t -> static_unit list
(** Distinct static units that correspond to at least one long-running
    node (the static reconfiguration points of the edited binary). *)

val instrumented_static_units : t -> static_unit list
(** Distinct static units on a path to a long-running node, including
    the long-running units themselves (the static instrumentation
    points). *)

val pp : Format.formatter -> t -> unit
(** Render the tree with instance and instruction annotations. *)

val to_dot : t -> string
(** Graphviz rendering: one box per node labelled with its kind,
    instance count and instruction total; long-running nodes shaded (as
    in the paper's Figure 3). *)
