(** Ablation benches for the design choices DESIGN.md calls out. *)

val sync_penalty : ?workloads:Mcd_workloads.Workload.t list -> unit -> string
(** The inherent MCD cost: baseline MCD vs a globally synchronous core
    at full speed (the ~1.3% performance / ~0.8% energy penalties of
    Section 4.1). *)

val shaker_passes :
  ?workload:Mcd_workloads.Workload.t -> ?passes:int list -> unit -> string
(** Energy/performance of the profile-based plan as the shaker's pass
    budget varies — one pass distributes slack greedily, the full budget
    approaches the slack-uniform fixed point. *)

val long_threshold :
  ?workload:Mcd_workloads.Workload.t -> ?thresholds:int list -> unit -> string
(** Sensitivity to the long-running node threshold (the paper's 10k
    instructions): node counts, reconfiguration rate, and results. *)

val narrow_core : ?workloads:Mcd_workloads.Workload.t list -> unit -> string
(** Does profile-based DVFS survive a different microarchitecture? Rerun
    training and production on a 2-wide core with half-size queues and
    ROB. Slack shifts (a narrower machine exposes less ILP slack and more
    fetch pressure), so the chosen frequencies differ — but the method's
    contract (savings at bounded slowdown) should continue to hold. *)
