test/test_profiling.ml: Alcotest Format List Mcd_isa Mcd_profiling QCheck QCheck_alcotest String
