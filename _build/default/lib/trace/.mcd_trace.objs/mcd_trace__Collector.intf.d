lib/trace/collector.mli: Mcd_cpu Mcd_profiling
