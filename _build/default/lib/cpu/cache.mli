(** Set-associative cache with true-LRU replacement.

    Timing (access latency, miss handling) belongs to the pipeline; this
    module only answers hit/miss, maintains LRU state, and counts
    accesses. *)

type t

val create : Config.cache_geometry -> t

val access : t -> addr:int -> bool
(** [access t ~addr] probes the line containing [addr]; on a miss the
    line is filled (evicting the LRU way). Returns [true] on hit. *)

val probe : t -> addr:int -> bool
(** Hit test with no side effects (no fill, no LRU update). *)

val hits : t -> int
val misses : t -> int

val reset_stats : t -> unit
