module Rng = Mcd_util.Rng
module P = Mcd_isa.Program
module Build = Mcd_isa.Build
module Json = Mcd_obs.Json
module Workload = Mcd_workloads.Workload

type t = {
  seed : int;
  phases : int;
  depth : int;
  fp_mix : float;
  ws_kb : int;
  branch_entropy : float;
  iter_spread : float;
  divergence : float;
  train_insts : int;
  ref_insts : int;
}

let default =
  {
    seed = 1;
    phases = 3;
    depth = 2;
    fp_mix = 0.3;
    ws_kb = 64;
    branch_entropy = 0.4;
    iter_spread = 0.5;
    divergence = 0.2;
    train_insts = 12_000;
    ref_insts = 30_000;
  }

let validate s =
  let check name ok detail =
    if ok then Ok () else Error (Printf.sprintf "%s %s" name detail)
  in
  let ( let* ) = Result.bind in
  let* () = check "phases" (s.phases >= 1 && s.phases <= 16) "must be 1..16" in
  let* () = check "depth" (s.depth >= 1 && s.depth <= 8) "must be 1..8" in
  let* () = check "ws_kb" (s.ws_kb >= 1 && s.ws_kb <= 8192) "must be 1..8192" in
  let unit_f name v =
    check name (Float.is_finite v && v >= 0.0 && v <= 1.0) "must be in [0, 1]"
  in
  let* () = unit_f "fp_mix" s.fp_mix in
  let* () = unit_f "branch_entropy" s.branch_entropy in
  let* () = unit_f "divergence" s.divergence in
  let* () =
    check "iter_spread"
      (Float.is_finite s.iter_spread && s.iter_spread >= 0.0
     && s.iter_spread <= 4.0)
      "must be in [0, 4]"
  in
  let window name v =
    check name (v >= 1_000 && v <= 5_000_000) "must be 1_000..5_000_000"
  in
  let* () = window "train_insts" s.train_insts in
  window "ref_insts" s.ref_insts

let canonical s =
  Printf.sprintf
    "mcd-gen-spec/1;seed=%d;phases=%d;depth=%d;fp_mix=%h;ws_kb=%d;branch_entropy=%h;iter_spread=%h;divergence=%h;train_insts=%d;ref_insts=%d"
    s.seed s.phases s.depth s.fp_mix s.ws_kb s.branch_entropy s.iter_spread
    s.divergence s.train_insts s.ref_insts

let digest s = Digest.to_hex (Digest.string (canonical s))
let name s = "gen-" ^ String.sub (digest s) 0 12

let summary s =
  Printf.sprintf
    "seed=%d phases=%d depth=%d fp=%.2f ws=%dKB entropy=%.2f spread=%.2f div=%.2f"
    s.seed s.phases s.depth s.fp_mix s.ws_kb s.branch_entropy s.iter_spread
    s.divergence

let schema = "mcd-gen-spec/1"

let to_json s =
  Json.Obj
    [
      ("schema", Json.String schema);
      ("seed", Json.Int s.seed);
      ("phases", Json.Int s.phases);
      ("depth", Json.Int s.depth);
      ("fp_mix", Json.Float s.fp_mix);
      ("ws_kb", Json.Int s.ws_kb);
      ("branch_entropy", Json.Float s.branch_entropy);
      ("iter_spread", Json.Float s.iter_spread);
      ("divergence", Json.Float s.divergence);
      ("train_insts", Json.Int s.train_insts);
      ("ref_insts", Json.Int s.ref_insts);
    ]

let of_json j =
  let ( let* ) = Result.bind in
  let field name conv =
    match Option.bind (Json.member name j) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "spec json: missing or invalid %S" name)
  in
  let* () =
    match Option.bind (Json.member "schema" j) Json.to_string_opt with
    | Some s when s = schema -> Ok ()
    | Some s -> Error (Printf.sprintf "spec json: unknown schema %S" s)
    | None -> Error "spec json: missing schema"
  in
  let* seed = field "seed" Json.to_int_opt in
  let* phases = field "phases" Json.to_int_opt in
  let* depth = field "depth" Json.to_int_opt in
  let* fp_mix = field "fp_mix" Json.to_float_opt in
  let* ws_kb = field "ws_kb" Json.to_int_opt in
  let* branch_entropy = field "branch_entropy" Json.to_float_opt in
  let* iter_spread = field "iter_spread" Json.to_float_opt in
  let* divergence = field "divergence" Json.to_float_opt in
  let* train_insts = field "train_insts" Json.to_int_opt in
  let* ref_insts = field "ref_insts" Json.to_int_opt in
  let s =
    {
      seed;
      phases;
      depth;
      fp_mix;
      ws_kb;
      branch_entropy;
      iter_spread;
      divergence;
      train_insts;
      ref_insts;
    }
  in
  let* () = validate s in
  Ok s

let draw ?(train_insts = 12_000) ?(ref_insts = 30_000) ~seed () =
  let r = Rng.split (Rng.create seed) ~label:"spec-draw" in
  {
    seed;
    phases = 1 + Rng.int r 6;
    depth = 1 + Rng.int r 3;
    fp_mix = Rng.float r 1.0;
    ws_kb = 1 lsl Rng.int r 12;
    branch_entropy = Rng.float r 1.0;
    iter_spread = Rng.float r 1.0;
    divergence = Rng.float r 1.0;
    train_insts;
    ref_insts;
  }

(* ------------------------------------------------------------------ *)
(* Program generation. Everything below is a pure function of the spec:
   streams split from the master seed with fixed labels, draws in a
   fixed order. *)

let clamp01 f = if f < 0.0 then 0.0 else if f > 1.0 then 1.0 else f

let draw_block b r spec ~fp ~len =
  let ws_bytes =
    let base = spec.ws_kb * 1024 in
    match Rng.int r 3 with
    | 0 -> max 64 (base / 2)
    | 1 -> base
    | _ -> base * 2
  in
  let mem =
    match Rng.int r 4 with
    | 0 | 1 -> P.Seq_stride { stride = 8 * (1 + Rng.int r 8); region = ws_bytes }
    | 2 -> P.Rand_in { region = ws_bytes }
    | _ -> P.Chase { region = max 4096 ws_bytes }
  in
  let branch =
    if Rng.bool r spec.branch_entropy then P.Biased (0.5 +. Rng.float r 0.2)
    else if Rng.bool r 0.5 then
      P.Periodic (Array.init (1 + Rng.int r 6) (fun _ -> Rng.bool r 0.5))
    else P.Biased (0.9 +. Rng.float r 0.09)
  in
  let frac_load = 0.10 +. Rng.float r 0.25 in
  let frac_store = 0.02 +. Rng.float r 0.12 in
  let frac_branch = 0.03 +. Rng.float r 0.09 in
  let frac_int_mult, frac_fp_alu, frac_fp_mult =
    if fp then
      (Rng.float r 0.05, 0.15 +. Rng.float r 0.20, 0.03 +. Rng.float r 0.10)
    else (0.03 +. Rng.float r 0.12, 0.0, 0.0)
  in
  (* Leave at least 15% of the mix to plain Int_alu. *)
  let total =
    frac_load +. frac_store +. frac_branch +. frac_int_mult +. frac_fp_alu
    +. frac_fp_mult
  in
  let k = if total > 0.85 then 0.85 /. total else 1.0 in
  Build.straight b ~length:len
    ~frac_int_mult:(k *. frac_int_mult)
    ~frac_fp_alu:(k *. frac_fp_alu)
    ~frac_fp_mult:(k *. frac_fp_mult)
    ~frac_load:(k *. frac_load)
    ~frac_store:(k *. frac_store)
    ~frac_branch:(k *. frac_branch)
    ~mem ~branch
    ~dep_chain:(1.5 +. Rng.float r 4.0)
    ()

let draw_trips r spec =
  let base = 2 + Rng.int r 3 in
  let jitter = exp (spec.iter_spread *. Rng.normal r ~mean:0.0 ~sigma:1.0) in
  min 64 (max 1 (int_of_float (Float.round (float_of_int base *. jitter))))

(* A loop nest of up to [levels] levels holding roughly [budget] dynamic
   instructions per execution: trip counts divide the remaining budget,
   so the spread knob reshapes nests without blowing up run length. *)
let rec draw_nest b r spec ~fp ~levels ~budget =
  if levels <= 0 || budget < 96 then
    [ draw_block b r spec ~fp ~len:(max 12 (min 160 budget)) ]
  else
    let trips = draw_trips r spec in
    let inner =
      draw_nest b r spec ~fp ~levels:(levels - 1) ~budget:(max 32 (budget / trips))
    in
    let body =
      (* occasional zero-trip loop: present statically, never entered —
         the walker must skip it without a marker *)
      if Rng.bool r 0.1 then
        Build.loop b (P.Const 0) [ draw_block b r spec ~fp ~len:24 ] :: inner
      else inner
    in
    [ Build.loop b (P.Const trips) body ]

let draw_phase b r spec ~has_kernel =
  let fp = Rng.bool r spec.fp_mix in
  let levels = 1 + Rng.int r spec.depth in
  let budget = 800 + Rng.int r 4000 in
  let body = draw_nest b r spec ~fp ~levels ~budget in
  let body =
    if has_kernel && Rng.bool r 0.6 then
      body @ [ Build.call b ~arg:(4 + Rng.int r 24) "kernel" ]
    else body
  in
  if Rng.bool r 0.7 then begin
    (* A path the training input rarely (p0) and the reference input
       often (p1) takes; the closure is a pure function of the input,
       so Program.canonical stays well defined. *)
    let p0 = Rng.float r 0.15 in
    let p1 = clamp01 (p0 +. 0.3 +. Rng.float r 0.55) in
    let alt =
      draw_nest b r spec ~fp:(not fp) ~levels:(max 1 (levels - 1))
        ~budget:(budget / 2)
    in
    body
    @ [
        Build.choose b
          ~prob:(fun (inp : P.input) ->
            clamp01 (p0 +. ((p1 -. p0) *. inp.P.divergence)))
          alt [];
      ]
  end
  else body

let program spec =
  let master = Rng.create spec.seed in
  Build.program ~name:(name spec) @@ fun b ->
  let has_kernel = spec.phases >= 2 in
  if has_kernel then begin
    let kr = Rng.split master ~label:"kernel" in
    let blk = draw_block b kr spec ~fp:(Rng.bool kr spec.fp_mix) ~len:(24 + Rng.int kr 40) in
    Build.func b "kernel"
      [ Build.loop b (P.Arg_scaled { base = 1; per_arg = 1 }) [ blk ] ]
  end;
  let phase_names =
    List.init spec.phases (fun i -> Printf.sprintf "phase%d" i)
  in
  List.iteri
    (fun i pname ->
      let pr = Rng.split master ~label:(Printf.sprintf "phase-%d" i) in
      Build.func b pname (draw_phase b pr spec ~has_kernel))
    phase_names;
  Build.func b "main"
    [
      Build.loop b
        (P.Scaled { base = 2; per_scale = 1 })
        (List.map (fun pname -> Build.call b pname) phase_names);
    ];
  "main"

let workload spec =
  (match validate spec with
  | Ok () -> ()
  | Error e -> invalid_arg (Printf.sprintf "Gen.Spec.workload: %s" e));
  Workload.make ~name:(name spec) ~program:(program spec)
    ~ref_divergence:spec.divergence ~train_window:spec.train_insts
    ~ref_window:spec.ref_insts ~kind:Workload.Generated
    ~trait:(Printf.sprintf "generated: %s" (summary spec))
    ()

let shrink s =
  let shrink_float f =
    if f <= 0.0 then [] else if f < 0.02 then [ 0.0 ] else [ 0.0; f /. 2.0 ]
  in
  let cands =
    [
      { s with phases = 1 };
      { s with phases = s.phases / 2 };
      { s with phases = s.phases - 1 };
      { s with depth = 1 };
      { s with depth = s.depth - 1 };
      { s with ws_kb = max 1 (s.ws_kb / 4) };
      { s with ws_kb = max 1 (s.ws_kb / 2) };
    ]
    @ List.map (fun f -> { s with fp_mix = f }) (shrink_float s.fp_mix)
    @ List.map
        (fun f -> { s with branch_entropy = f })
        (shrink_float s.branch_entropy)
    @ List.map
        (fun f -> { s with iter_spread = f })
        (shrink_float s.iter_spread)
    @ List.map (fun f -> { s with divergence = f }) (shrink_float s.divergence)
  in
  let seen = Hashtbl.create 16 in
  List.filter
    (fun c ->
      c <> s
      && Result.is_ok (validate c)
      &&
      let key = canonical c in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    cands
