(** A benchmark: a program plus its training and reference inputs.

    The suite stands in for the paper's MediaBench + SPEC CPU2000
    selection. Each synthetic program reproduces the *behavioural
    traits* the paper's evaluation depends on for its namesake — phase
    structure (functions, loop nests, call sites), instruction mix,
    working-set size, branch predictability, and the degree to which the
    reference input exercises paths the training input never takes.
    Instruction windows are scaled down from the paper's 200M-instruction
    windows to keep whole-suite simulation tractable; the synthetic
    programs' phases repeat at a much shorter period, so the windows
    still observe every phase. *)

type kind =
  | Media
  | Spec_int
  | Spec_fp
  | Generated
      (** produced by a seeded spec ({!Mcd_gen.Spec}) rather than
          hand-built; registered dynamically via {!Suite.register} *)

type t = {
  name : string;
  program : Mcd_isa.Program.t;
  train : Mcd_isa.Program.input;
  reference : Mcd_isa.Program.input;
  train_window : int;  (** max dynamic instructions for training runs *)
  ref_window : int;  (** max dynamic instructions for production runs *)
  ref_offset : int;
      (** instructions retired (with full microarchitectural effect)
          before the measured reference window opens — the analogue of
          the paper's mid-program instruction windows; 0 for the
          MediaBench codecs, which run "entire program" *)
  kind : kind;
  trait : string;  (** one-line description of the behaviour modelled *)
}

val make :
  name:string ->
  program:Mcd_isa.Program.t ->
  ?train_scale:int ->
  ?ref_scale:int ->
  ?train_divergence:float ->
  ?ref_divergence:float ->
  ?train_window:int ->
  ?ref_window:int ->
  ?ref_offset:int ->
  kind:kind ->
  trait:string ->
  unit ->
  t
(** Seeds are derived from the benchmark name (train and reference
    differ). Defaults: scales 8/24, divergence 0/0, windows
    60_000/150_000. *)

val kind_name : kind -> string
