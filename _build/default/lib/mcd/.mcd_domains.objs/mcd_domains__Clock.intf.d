lib/mcd/clock.mli: Mcd_util
