module Histogram = Mcd_util.Histogram
module Domain = Mcd_domains.Domain
module Freq = Mcd_domains.Freq

type result = {
  histograms : Histogram.t array;
  passes : int;
  stretched_events : int;
  total_events : int;
}

let fmax = float_of_int Freq.fmax_mhz

(* Power factor of an event running at frequency [f] (MHz): the domain's
   relative power, scaled by the operating point (V^2 for dynamic energy
   per cycle, x f/fmax for cycle rate). *)
let power_at ~p0 ~f = p0 *. Freq.energy_scale f *. (f /. fmax)

let freq_of ~orig ~dur = fmax *. orig /. dur
let dur_at ~orig ~f = orig *. fmax /. f

(* Lowest step frequency reachable for an event given available slack
   and the power threshold: step down while power still exceeds the
   threshold and the extra duration fits in the slack. *)
let target_freq ~p0 ~orig ~dur ~slack ~threshold =
  let cur_f = freq_of ~orig ~dur in
  let rec go best idx =
    if idx < 0 then best
    else
      let f = float_of_int (Freq.of_index idx) in
      if f >= cur_f then go best (idx - 1)
      else if power_at ~p0 ~f:best <= threshold then best
      else
        let extra = dur_at ~orig ~f -. dur in
        if extra <= slack +. 1e-9 then go f (idx - 1) else best
  in
  go cur_f (Freq.num_steps - 1)

let run ?(max_passes = 24) ?(threshold_decay = 0.85) (dag : Dag.t) =
  let n = Dag.size dag in
  let start = Array.map (fun (e : Dag.event) -> e.Dag.start) dag.Dag.events in
  let dur = Array.map (fun (e : Dag.event) -> e.Dag.duration) dag.Dag.events in
  let orig = Array.copy dur in
  let p0 =
    Array.map
      (fun (e : Dag.event) -> Domain.relative_power e.Dag.domain)
      dag.Dag.events
  in
  (* processing orders from the original (topological) schedule *)
  let fwd_order = Array.init n (fun i -> i) in
  Array.sort
    (fun a b -> compare (start.(a), a) (start.(b), b))
    fwd_order;
  let bwd_order = Array.of_list (List.rev (Array.to_list fwd_order)) in
  let out_slack id =
    let e_end = start.(id) +. dur.(id) in
    let s = dag.Dag.succs.(id) in
    if Array.length s = 0 then Float.max 0.0 (dag.Dag.t_max -. e_end)
    else
      Array.fold_left
        (fun acc sid -> Float.min acc (start.(sid) -. e_end))
        Float.infinity s
      |> Float.max 0.0
  in
  let in_slack id =
    let p = dag.Dag.preds.(id) in
    if Array.length p = 0 then Float.max 0.0 (start.(id) -. dag.Dag.t_min)
    else
      Array.fold_left
        (fun acc pid -> Float.min acc (start.(id) -. (start.(pid) +. dur.(pid))))
        Float.infinity p
      |> Float.max 0.0
  in
  let min_succ_start id =
    let s = dag.Dag.succs.(id) in
    if Array.length s = 0 then dag.Dag.t_max
    else Array.fold_left (fun acc sid -> Float.min acc start.(sid)) Float.infinity s
  in
  let max_pred_end id =
    let p = dag.Dag.preds.(id) in
    if Array.length p = 0 then dag.Dag.t_min
    else
      Array.fold_left
        (fun acc pid -> Float.max acc (start.(pid) +. dur.(pid)))
        Float.neg_infinity p
  in
  let stretched = ref false in
  let stretch_threshold =
    let m = Array.fold_left Float.max 0.0 p0 in
    ref (0.95 *. m)
  in
  let stretch id slack =
    let f_cur = freq_of ~orig:orig.(id) ~dur:dur.(id) in
    let f' =
      target_freq ~p0:p0.(id) ~orig:orig.(id) ~dur:dur.(id) ~slack
        ~threshold:!stretch_threshold
    in
    if f' < f_cur -. 1e-9 then begin
      dur.(id) <- dur_at ~orig:orig.(id) ~f:f';
      stretched := true
    end
  in
  let passes_done = ref 0 in
  let quiet_pairs = ref 0 in
  let pass = ref 0 in
  while !pass < max_passes && !quiet_pairs < 2 do
    incr pass;
    stretched := false;
    (* backward pass: consume outgoing slack, push remaining slack to
       incoming edges by moving the event later *)
    Array.iter
      (fun id ->
        let slack = out_slack id in
        if slack > 0.0 && power_at ~p0:p0.(id) ~f:(freq_of ~orig:orig.(id) ~dur:dur.(id)) > !stretch_threshold
        then stretch id slack;
        (* move as late as dependences allow *)
        let latest = min_succ_start id -. dur.(id) in
        if latest > start.(id) then start.(id) <- latest)
      bwd_order;
    (* forward pass: consume incoming slack, push remaining slack to
       outgoing edges by moving the event earlier *)
    Array.iter
      (fun id ->
        let slack = in_slack id in
        if slack > 0.0 && power_at ~p0:p0.(id) ~f:(freq_of ~orig:orig.(id) ~dur:dur.(id)) > !stretch_threshold
        then begin
          let before = dur.(id) in
          stretch id slack;
          (* growing into incoming slack means starting earlier *)
          let grown = dur.(id) -. before in
          if grown > 0.0 then start.(id) <- start.(id) -. grown
        end;
        let earliest = max_pred_end id in
        if earliest < start.(id) then start.(id) <- earliest)
      fwd_order;
    passes_done := !pass;
    stretch_threshold := !stretch_threshold *. threshold_decay;
    if !stretched then quiet_pairs := 0 else incr quiet_pairs
  done;
  let histograms =
    Array.init Domain.count (fun _ -> Histogram.create ~bins:Freq.num_steps)
  in
  let stretched_events = ref 0 in
  Array.iteri
    (fun id (e : Dag.event) ->
      let f = freq_of ~orig:orig.(id) ~dur:dur.(id) in
      (* snap down to the step actually sustainable for this event *)
      let step =
        let rec go idx =
          if idx <= 0 then 0
          else if float_of_int (Freq.of_index idx) <= f +. 1e-6 then idx
          else go (idx - 1)
        in
        go (Freq.num_steps - 1)
      in
      if step < Freq.num_steps - 1 then incr stretched_events;
      let cycles = orig.(id) /. 1000.0 in
      Histogram.add histograms.(Domain.index e.Dag.domain) ~bin:step
        ~weight:cycles)
    dag.Dag.events;
  {
    histograms;
    passes = !passes_done;
    stretched_events = !stretched_events;
    total_events = n;
  }

let frequencies_of_durations ~orig ~stretched =
  Array.mapi
    (fun i o ->
      let f = fmax *. o /. stretched.(i) in
      let rec go idx =
        if idx <= 0 then Freq.of_index 0
        else if float_of_int (Freq.of_index idx) <= f +. 1e-6 then
          Freq.of_index idx
        else go (idx - 1)
      in
      go (Freq.num_steps - 1))
    orig
