module Probe = Mcd_cpu.Probe
module Domain = Mcd_domains.Domain

type event = {
  id : int;
  seq : int;
  domain : Domain.t;
  start : float;
  duration : float;
}

type t = {
  events : event array;
  succs : int array array;
  preds : int array array;
  t_min : float;
  t_max : float;
}

(* per-instruction event ids by stage *)
type slots = {
  mutable fetch : int;
  mutable dispatch : int;
  mutable work : int; (* execute or mem *)
  mutable retire : int;
}

let empty_slots () = { fetch = -1; dispatch = -1; work = -1; retire = -1 }

let default_rob_size = 80

let build ?(rob_size = default_rob_size) (raw : Probe.event array) =
  let n = Array.length raw in
  let events =
    Array.mapi
      (fun id (e : Probe.event) ->
        {
          id;
          seq = e.Probe.seq;
          domain = e.Probe.domain;
          start = float_of_int e.Probe.start;
          duration = float_of_int (max 1 e.Probe.duration);
        })
      raw
  in
  let by_seq = Hashtbl.create (max 16 (n / 4)) in
  Array.iteri
    (fun id (e : Probe.event) ->
      let slots =
        match Hashtbl.find_opt by_seq e.Probe.seq with
        | Some s -> s
        | None ->
            let s = empty_slots () in
            Hashtbl.add by_seq e.Probe.seq s;
            s
      in
      match e.Probe.stage with
      | Probe.Fetch_s -> slots.fetch <- id
      | Probe.Dispatch_s -> slots.dispatch <- id
      | Probe.Execute_s | Probe.Mem_s -> slots.work <- id
      | Probe.Retire_s -> slots.retire <- id)
    raw;
  let succs_l = Array.make n [] in
  let preds_l = Array.make n [] in
  let add_edge u v =
    if u >= 0 && v >= 0 && u <> v then begin
      succs_l.(u) <- v :: succs_l.(u);
      preds_l.(v) <- u :: preds_l.(v)
    end
  in
  (* intra-instruction chains *)
  Hashtbl.iter
    (fun _seq s ->
      let chain = [ s.fetch; s.dispatch; s.work; s.retire ] in
      let present = List.filter (fun id -> id >= 0) chain in
      let rec link = function
        | a :: (b :: _ as rest) ->
            add_edge a b;
            link rest
        | [ _ ] | [] -> ()
      in
      link present)
    by_seq;
  (* data and control dependences, serialization of fetch and retire,
     and reorder-buffer occupancy pressure *)
  let dep_edges id (e : Probe.event) =
    Array.iter
      (fun pseq ->
        match Hashtbl.find_opt by_seq pseq with
        | Some ps when ps.work >= 0 -> add_edge ps.work id
        | Some _ | None -> ())
      e.Probe.dep_seqs
  in
  let last_fetch = ref (-1) and last_retire = ref (-1) in
  (* execution-resource serialization: within a domain, the k-th recent
     operation occupies one of [units] functional units, so an operation
     cannot start before the one [units] back has finished; without
     these edges, co-scheduled operations would each claim the same idle
     gap as private slack *)
  let resource_lag = [| 1; 4; 2; 2 |] (* front, int, fp, mem *) in
  let resource_fifo = Array.map (fun lag -> Array.make lag (-1)) resource_lag in
  let resource_pos = Array.make (Array.length resource_lag) 0 in
  let resource_edge id domain =
    let d = Domain.index domain in
    let lag = resource_lag.(d) in
    let fifo = resource_fifo.(d) in
    let pos = resource_pos.(d) in
    let prev = fifo.(pos mod lag) in
    if prev >= 0 then add_edge prev id;
    fifo.(pos mod lag) <- id;
    resource_pos.(d) <- pos + 1
  in
  Array.iteri
    (fun id (e : Probe.event) ->
      match e.Probe.stage with
      | Probe.Fetch_s ->
          add_edge !last_fetch id;
          last_fetch := id;
          (* control dependence on a mispredicted branch *)
          dep_edges id e;
          (* ROB pressure: instruction i cannot be fetched before
             instruction i - rob_size retires *)
          (match Hashtbl.find_opt by_seq (e.Probe.seq - rob_size) with
          | Some ps when ps.retire >= 0 -> add_edge ps.retire id
          | Some _ | None -> ())
      | Probe.Retire_s ->
          add_edge !last_retire id;
          last_retire := id
      | Probe.Execute_s | Probe.Mem_s ->
          dep_edges id e;
          resource_edge id e.Probe.domain
      | Probe.Dispatch_s -> ())
    raw;
  let t_min =
    Array.fold_left (fun acc e -> Float.min acc e.start) Float.infinity events
  in
  let t_max =
    Array.fold_left
      (fun acc e -> Float.max acc (e.start +. e.duration))
      Float.neg_infinity events
  in
  {
    events;
    succs = Array.map (fun l -> Array.of_list (List.rev l)) succs_l;
    preds = Array.map (fun l -> Array.of_list (List.rev l)) preds_l;
    t_min = (if n = 0 then 0.0 else t_min);
    t_max = (if n = 0 then 0.0 else t_max);
  }

let size t = Array.length t.events

let edge_count t =
  Array.fold_left (fun acc s -> acc + Array.length s) 0 t.succs

let slack t id =
  let e = t.events.(id) in
  let e_end = e.start +. e.duration in
  let s = t.succs.(id) in
  if Array.length s = 0 then Float.max 0.0 (t.t_max -. e_end)
  else
    Array.fold_left
      (fun acc sid -> Float.min acc (Float.max 0.0 (t.events.(sid).start -. e_end)))
      Float.infinity s

(* The first portion of each edge's observed gap is latch/wakeup/
   synchronization time that stretches with the consumer domain's
   period; anything beyond that is a wait on other resources, carried as
   a frequency-independent constant. The cap is roughly one wakeup cycle
   plus one synchronization capture at full speed. *)
let scaled_gap_cap_ps = 1800.0

(* Longest path under per-domain stretch factors. The DP models event
   start times: a consumer starts no earlier than each producer's start
   plus the producer's (stretched) duration plus the hop gap, where the
   first [scaled_gap_cap_ps] of a non-negative gap scales with the
   consumer's domain (latch/wakeup/synchronization) and the remainder is
   a frequency-independent wait; a negative gap (co-scheduled events,
   e.g. a 4-wide fetch group) scales with the producer's domain so that
   co-issue stays co-issue at any frequency. Every event is also
   anchored at its recorded start as a frequency-independent lower bound
   (waits the DAG does not explain). At full speed the computed makespan
   therefore equals the recorded one exactly.

   Returns the composition of the winning path: per-domain scaling time
   in the first {!Domain.count} entries (possibly negative contributions
   from overlaps), frequency-independent time in the last. *)
let longest_path_signature t ~slow =
  let n = Array.length t.events in
  if n = 0 then Array.make (Domain.count + 1) 0.0
  else begin
    let order = Array.init n (fun i -> i) in
    Array.sort
      (fun a b ->
        compare (t.events.(a).start, a) (t.events.(b).start, b))
      order;
    let s_time = Array.make n 0.0 in
    (* starts *)
    let best_pred = Array.make n (-1) in
    let gap u v =
      let eu = t.events.(u) and ev = t.events.(v) in
      ev.start -. (eu.start +. eu.duration)
    in
    Array.iter
      (fun id ->
        let e = t.events.(id) in
        let from =
          Array.fold_left
            (fun acc pid ->
              let eu = t.events.(pid) in
              let g = gap pid id in
              let hop =
                if g >= 0.0 then
                  let scaled = Float.min g scaled_gap_cap_ps in
                  (scaled *. slow e.domain) +. (g -. scaled)
                else g *. slow eu.domain
              in
              let cand =
                s_time.(pid) +. (eu.duration *. slow eu.domain) +. hop
              in
              if cand > fst acc then (cand, pid) else acc)
            (e.start -. t.t_min, -1)
            t.preds.(id)
        in
        s_time.(id) <- fst from;
        best_pred.(id) <- snd from)
      order;
    let sink = ref 0 in
    let end_of id =
      s_time.(id) +. (t.events.(id).duration *. slow t.events.(id).domain)
    in
    Array.iteri (fun id _ -> if end_of id > end_of !sink then sink := id)
      t.events;
    let signature = Array.make (Domain.count + 1) 0.0 in
    let add d v = signature.(d) <- signature.(d) +. v in
    let add_dom domain v = add (Domain.index domain) v in
    let add_const v = add Domain.count v in
    (* the sink's own duration *)
    add_dom t.events.(!sink).domain t.events.(!sink).duration;
    let rec back id =
      let pid = best_pred.(id) in
      if pid < 0 then add_const (t.events.(id).start -. t.t_min)
      else begin
        let eu = t.events.(pid) and ev = t.events.(id) in
        let g = gap pid id in
        if g >= 0.0 then begin
          let scaled = Float.min g scaled_gap_cap_ps in
          add_dom ev.domain scaled;
          add_const (g -. scaled)
        end
        else add_dom eu.domain g;
        add_dom eu.domain eu.duration;
        back pid
      end
    in
    back !sink;
    signature
  end

let path_signatures t =
  let base_sig = longest_path_signature t ~slow:(fun _ -> 1.0) in
  let base_ps = Array.fold_left ( +. ) 0.0 base_sig in
  let probes =
    (fun (_ : Domain.t) -> 1.0)
    :: (fun (_ : Domain.t) -> 4.0)
    :: List.map
         (fun d other -> if other = d then 4.0 else 1.0)
         Domain.all
  in
  let signatures = List.map (fun slow -> longest_path_signature t ~slow) probes in
  { Path_model.base_ps; signatures }

let validate t =
  let tolerance = 2000.0 (* ps: sync + jitter slop *) in
  Array.iteri
    (fun id e ->
      if e.id <> id then invalid_arg "Dag.validate: id mismatch";
      if e.duration <= 0.0 then invalid_arg "Dag.validate: non-positive duration";
      Array.iter
        (fun sid ->
          let s = t.events.(sid) in
          if s.start +. tolerance < e.start then
            invalid_arg
              (Printf.sprintf
                 "Dag.validate: edge %d->%d goes backward in time (%.0f -> %.0f)"
                 id sid e.start s.start))
        t.succs.(id))
    t.events
