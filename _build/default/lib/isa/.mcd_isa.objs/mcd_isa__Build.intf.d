lib/isa/build.mli: Program
