examples/quickstart.mli:
