module Controller = Mcd_cpu.Controller
module Domain = Mcd_domains.Domain
module Freq = Mcd_domains.Freq
module Reconfig = Mcd_domains.Reconfig
module Ckey = Mcd_cache.Key

(* --- baseline ---------------------------------------------------------- *)

let baseline =
  Policy.make ~name:"baseline" ~doc:"all domains at full speed, no reactions"
    ~feedback:false
    (fun ?sink:_ () -> Controller.nop)

(* --- fixed ------------------------------------------------------------- *)

(* One write at the first marker, then silence. The armed flag lives
   inside [create], so every run gets a controller that still fires —
   the reuse bug this interface exists to make impossible. *)
let fixed ?label setting =
  let params =
    List.map
      (fun d -> string_of_int (Reconfig.get setting d))
      Domain.all
  in
  Policy.make ~name:"fixed" ?label
    ~doc:"one reconfiguration write at the first marker" ~params
    ~feedback:false
    (fun ?sink:_ () ->
      let armed = ref true in
      {
        Controller.name = "fixed";
        on_marker =
          (fun _ ~now:_ ->
            if !armed then begin
              armed := false;
              { Controller.no_reaction with set = Some setting }
            end
            else Controller.no_reaction);
        on_sample = (fun _ ~now:_ -> None);
        sample_interval_cycles = 0;
      })

(* --- utilization-proportional ------------------------------------------ *)

type util_prop_params = {
  interval_cycles : int;
  ewma : float;
  cooldown : int;
}

let util_prop_default = { interval_cycles = 10_000; ewma = 0.5; cooldown = 2 }

let util_prop_params_id p =
  [
    string_of_int p.interval_cycles;
    Ckey.float_param p.ewma;
    string_of_int p.cooldown;
  ]

(* The schedsim PowerAware formula, f = fmin + (fmax - fmin) * U, on the
   smoothed per-domain queue utilisation. *)
let util_prop_controller ?(params = util_prop_default) ?sink () =
  let cur = Array.make Domain.count Freq.fmax_mhz in
  let smooth = Array.make Domain.count nan in
  let cooldown = Policy.Cooldown.create ~intervals:params.cooldown in
  let on_sample (s : Controller.sample) ~now =
    Policy.Cooldown.tick cooldown;
    let changed = ref false in
    List.iter
      (fun d ->
        let i = Domain.index d in
        let raw = Float.min 1.0 (Policy.utilization s d) in
        let u =
          if Float.is_nan smooth.(i) then raw
          else (params.ewma *. raw) +. ((1.0 -. params.ewma) *. smooth.(i))
        in
        smooth.(i) <- u;
        let f =
          Freq.clamp
            (Freq.fmin_mhz
            + int_of_float (u *. float_of_int (Freq.fmax_mhz - Freq.fmin_mhz))
            )
        in
        if f <> cur.(i) && Policy.Cooldown.ready cooldown i then begin
          (match sink with
          | None -> ()
          | Some snk ->
              Mcd_obs.Sink.decision snk ~t_ps:now ~source:"util-prop"
                ~trigger:Mcd_obs.Sink.Sample
                ~detail:
                  (Printf.sprintf "U %.2f %s %d->%d MHz" u (Domain.name d)
                     cur.(i) f)
                ());
          cur.(i) <- f;
          Policy.Cooldown.arm cooldown i;
          changed := true
        end)
      Policy.scaled_domains;
    if !changed then
      Some
        (Reconfig.make ~front_end:Freq.fmax_mhz
           ~integer:cur.(Domain.index Domain.Integer)
           ~floating:cur.(Domain.index Domain.Floating)
           ~memory:cur.(Domain.index Domain.Memory))
    else None
  in
  {
    Controller.name = "util-prop";
    on_marker = (fun _ ~now:_ -> Controller.no_reaction);
    on_sample;
    sample_interval_cycles = params.interval_cycles;
  }

let util_prop ?label ?(params = util_prop_default) () =
  Policy.make ~name:"util-prop" ?label
    ~doc:"f = fmin + (fmax - fmin) * U per domain"
    ~params:(util_prop_params_id params) ~feedback:true
    ~cooldown_intervals:params.cooldown
    (fun ?sink () -> util_prop_controller ~params ?sink ())

(* --- attack/decay re-exports ------------------------------------------- *)

let online = Attack_decay.policy

(* A second parameterisation of the same policy: twitchier attacks, a
   double-size decay and a looser IPC guard. Registered both as a real
   contender and as the standing proof that one policy at two parameter
   settings keys (and therefore caches) separately. *)
let eager_params =
  {
    Attack_decay.default_params with
    Attack_decay.attack_threshold = 0.02;
    decay_step_mhz = 100;
    ipc_guard = 0.93;
  }

let online_eager () = Attack_decay.policy ~label:"online-eager" ~params:eager_params ()

(* --- registry ---------------------------------------------------------- *)

let mid_grid =
  Reconfig.make ~front_end:Freq.fmax_mhz ~integer:750 ~floating:750 ~memory:750

let all () =
  [
    baseline;
    online ();
    online_eager ();
    Pid.policy ();
    Cache_aware.policy ();
    util_prop ();
    fixed ~label:"fixed-750" mid_grid;
  ]

let contenders () =
  List.filter (fun p -> p.Policy.name <> "baseline") (all ())

(* The attack/decay family: the purely reactive controllers the
   generative campaign races profile-driven control against. *)
let adversaries () = [ online (); online_eager () ]

let by_name name =
  List.find_opt (fun p -> p.Policy.label = name) (all ())

let names () = List.map (fun p -> p.Policy.label) (all ())
