let all = Mediabench.all @ Spec.all

let names = List.map (fun w -> w.Workload.name) all

let find_opt name = List.find_opt (fun w -> w.Workload.name = name) all

let by_name name =
  match find_opt name with
  | Some w -> w
  | None ->
      invalid_arg
        (Printf.sprintf "Suite.by_name: unknown benchmark %S (valid: %s)"
           name
           (String.concat ", " names))

let of_kind k = List.filter (fun w -> w.Workload.kind = k) all
let media = of_kind Workload.Media
let spec_int = of_kind Workload.Spec_int
let spec_fp = of_kind Workload.Spec_fp
