(** Weighted fixed-bin histograms.

    The shaker algorithm summarises, per clock domain, how many cycles of
    work were scaled to each frequency step; slowdown thresholding then
    scans those histograms. Bins are indexed [0 .. bins-1] and carry float
    weights (cycle counts may be fractional after scaling). *)

type t

val create : bins:int -> t
(** All-zero histogram with [bins] bins. *)

val bins : t -> int

val add : t -> bin:int -> weight:float -> unit
(** Accumulate [weight] into [bin]. Raises [Invalid_argument] if the bin
    is out of range or the weight is negative. *)

val get : t -> bin:int -> float

val total : t -> float
(** Sum of all bin weights. *)

val merge_into : dst:t -> src:t -> unit
(** Add every bin of [src] into [dst]. The histograms must have the same
    number of bins. *)

val copy : t -> t

val fold : t -> init:'a -> f:('a -> bin:int -> weight:float -> 'a) -> 'a
(** Left fold over bins in increasing index order. *)

val suffix_sum : t -> from:int -> float
(** Total weight in bins [from .. bins-1]. *)

val pp : Format.formatter -> t -> unit
