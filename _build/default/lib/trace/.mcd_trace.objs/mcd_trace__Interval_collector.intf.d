lib/trace/interval_collector.mli: Mcd_cpu
