type 'a t = {
  queues : (string * 'a) Queue.t array;
  pending : (string, int) Hashtbl.t;
  queue_max : int;
  client_max : int;
  mutable length : int;
}

let create ?(levels = 3) ~queue_max ~client_max () =
  if levels <= 0 then invalid_arg "Jobq.create: levels must be positive";
  if queue_max <= 0 then invalid_arg "Jobq.create: queue_max must be positive";
  if client_max <= 0 then invalid_arg "Jobq.create: client_max must be positive";
  {
    queues = Array.init levels (fun _ -> Queue.create ());
    pending = Hashtbl.create 16;
    queue_max;
    client_max;
    length = 0;
  }

let length t = t.length
let queue_max t = t.queue_max
let client_max t = t.client_max

let client_pending t client =
  Option.value ~default:0 (Hashtbl.find_opt t.pending client)

type rejection = Queue_full of int | Client_full of int

let push ?(force = false) t ~level ~client item =
  if (not force) && t.length >= t.queue_max then Error (Queue_full t.length)
  else begin
    let mine = client_pending t client in
    if (not force) && mine >= t.client_max then Error (Client_full mine)
    else begin
      let level = max 0 (min level (Array.length t.queues - 1)) in
      Queue.push (client, item) t.queues.(level);
      Hashtbl.replace t.pending client (mine + 1);
      t.length <- t.length + 1;
      Ok ()
    end
  end

let pop t =
  let rec go i =
    if i >= Array.length t.queues then None
    else
      match Queue.take_opt t.queues.(i) with
      | None -> go (i + 1)
      | Some (client, item) ->
          t.length <- t.length - 1;
          (match Hashtbl.find_opt t.pending client with
          | Some n when n > 1 -> Hashtbl.replace t.pending client (n - 1)
          | _ -> Hashtbl.remove t.pending client);
          Some item
  in
  go 0
