module Workload = Mcd_workloads.Workload
module Suite = Mcd_workloads.Suite
module Metrics = Mcd_power.Metrics
module Pipeline = Mcd_cpu.Pipeline
module Config = Mcd_cpu.Config
module Context = Mcd_profiling.Context
module Plan = Mcd_core.Plan
module Plan_io = Mcd_core.Plan_io
module Editor = Mcd_core.Editor
module Freq = Mcd_domains.Freq
module Rng = Mcd_util.Rng
module Table = Mcd_util.Table
module Inject = Mcd_robust.Inject
module Degrade = Mcd_robust.Degrade

type recovery = Clean | Repaired | Rejected_to_baseline

type outcome = {
  workload : string;
  fault : string;
  crashed : string option;
  recovery : recovery;
  load_diagnostics : int;
  interventions : int;
  slowdown_pct : float;
  bound_pct : float;
  within_bound : bool;
}

type report = {
  outcomes : outcome list;
  crashes : int;
  bound_violations : int;
}

let clean r = r.crashes = 0 && r.bound_violations = 0

let context = Context.lf

(* Tolerance on the bound comparison: simulation noise between two runs
   of the same machine, not a policy allowance. *)
let bound_slack_pct = 0.5

let guarded_run (w : Workload.t) ?(dvfs_faults = []) controller =
  Pipeline.run ~controller ~dvfs_faults ~config:Config.alpha21264_like
    ~warmup_insts:w.Workload.ref_offset ~program:w.Workload.program
    ~input:w.Workload.reference ~max_insts:w.Workload.ref_window ()

(* What happened after the fault landed: the run that was actually
   performed, how it recovered, and the diagnostic counts. *)
let eval_cell (w : Workload.t) fault ~rng =
  let baseline = Runner.baseline w in
  match fault with
  | Inject.File ff ->
      let plan = Runner.plan_for w ~context ~train:`Train in
      let path = Filename.temp_file "mcd_robust" ".plan" in
      Fun.protect
        ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
        (fun () ->
          Plan_io.save plan ~path;
          Inject.corrupt_file ff ~rng ~path;
          match Plan_io.load_result ~path ~tree:plan.Plan.tree with
          | Result.Error errors ->
              (* the plan is refused: ship nothing, run the full-speed
                 baseline *)
              (baseline, Rejected_to_baseline, List.length errors, 0)
          | Result.Ok { Plan_io.plan = repaired; warnings } ->
              let edited = Editor.edit repaired in
              let counters = Degrade.counters () in
              let guarded =
                Degrade.guard ~counters edited.Editor.controller
              in
              let run = guarded_run w guarded in
              let interventions = Degrade.interventions counters in
              let recovery =
                if warnings = [] && interventions = 0 then Clean else Repaired
              in
              (run, recovery, List.length warnings, interventions))
  | Inject.Runtime rf ->
      let plan = Runner.plan_for w ~context ~train:`Train in
      let edited = Editor.edit plan in
      let counters = Degrade.counters () in
      let guarded = Degrade.guard ~counters edited.Editor.controller in
      let controller = Inject.harness rf ~rng guarded in
      let dvfs_faults = Inject.dvfs_faults rf ~rng in
      let run = guarded_run w ~dvfs_faults controller in
      let interventions = Degrade.interventions counters in
      let recovery = if interventions = 0 then Clean else Repaired in
      (run, recovery, 0, interventions)
  | Inject.Serve _ ->
      (* Serve faults target the daemon's crash-safety machinery, not
         the profile→edit→run pipeline; the chaos harness
         (tools/chaos_smoke.ml) drives them against a live server. In
         this campaign the cell degenerates to an unfaulted run, which
         must trivially sit inside the bound. *)
      let plan = Runner.plan_for w ~context ~train:`Train in
      let edited = Editor.edit plan in
      (guarded_run w edited.Editor.controller, Clean, 0, 0)

let cell (w : Workload.t) fault ~rng =
  let baseline = Runner.baseline w in
  (* the synchronous-machine bound: a whole core pinned at the frequency
     floor is the worst machine any legally-clamped degraded run can
     approach *)
  let sync_floor = Runner.single_clock w ~mhz:Freq.fmin_mhz in
  let bound_pct = Metrics.perf_degradation_pct ~baseline sync_floor in
  match eval_cell w fault ~rng with
  | run, recovery, load_diagnostics, interventions ->
      let slowdown_pct = Metrics.perf_degradation_pct ~baseline run in
      let within_bound =
        match recovery with
        | Rejected_to_baseline ->
            (* degrading to baseline must mean *being* the baseline *)
            Float.abs slowdown_pct <= 0.01
        | Clean | Repaired -> slowdown_pct <= bound_pct +. bound_slack_pct
      in
      {
        workload = w.Workload.name;
        fault = Inject.name fault;
        crashed = None;
        recovery;
        load_diagnostics;
        interventions;
        slowdown_pct;
        bound_pct;
        within_bound;
      }
  | exception e ->
      {
        workload = w.Workload.name;
        fault = Inject.name fault;
        crashed = Some (Printexc.to_string e);
        recovery = Clean;
        load_diagnostics = 0;
        interventions = 0;
        slowdown_pct = Float.nan;
        bound_pct;
        within_bound = false;
      }

let run ?(workloads = Suite.all) ?(faults = Inject.all) ~seed () =
  let master = Rng.create seed in
  let outcomes =
    List.concat_map
      (fun w ->
        List.map
          (fun fault ->
            let rng =
              Rng.split master
                ~label:(w.Workload.name ^ "/" ^ Inject.name fault)
            in
            cell w fault ~rng)
          faults)
      workloads
  in
  {
    outcomes;
    crashes = List.length (List.filter (fun o -> o.crashed <> None) outcomes);
    bound_violations =
      List.length
        (List.filter (fun o -> o.crashed = None && not o.within_bound) outcomes);
  }

let status o =
  match (o.crashed, o.recovery) with
  | Some e, _ -> "CRASH: " ^ e
  | None, Clean -> "clean"
  | None, Repaired -> "repaired"
  | None, Rejected_to_baseline -> "baseline"

let render r =
  let rows =
    List.map
      (fun o ->
        [
          o.workload;
          o.fault;
          status o;
          string_of_int o.load_diagnostics;
          string_of_int o.interventions;
          (if Float.is_nan o.slowdown_pct then "-"
           else Table.fmt_pct o.slowdown_pct);
          Table.fmt_pct o.bound_pct;
          (if o.within_bound then "ok" else "VIOLATION");
        ])
      r.outcomes
  in
  Table.render
    ~header:
      [
        "workload"; "fault"; "status"; "diags"; "interv"; "slowdown";
        "sync bound"; "check";
      ]
    ~rows ()
  ^ Printf.sprintf "%d cells: %d crashes, %d bound violations -> %s\n"
      (List.length r.outcomes) r.crashes r.bound_violations
      (if clean r then "PASS" else "FAIL")
