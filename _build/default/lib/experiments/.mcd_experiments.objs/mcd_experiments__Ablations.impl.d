lib/experiments/ablations.ml: List Mcd_core Mcd_cpu Mcd_domains Mcd_power Mcd_profiling Mcd_util Mcd_workloads Printf Runner
