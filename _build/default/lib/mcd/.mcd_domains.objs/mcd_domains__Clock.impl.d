lib/mcd/clock.ml: Float Freq Mcd_util
