type t = { mutable state : int64; mutable cached_normal : float option }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed =
  { state = mix64 (Int64.of_int seed); cached_normal = None }

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

(* Fowler-Noll-Vo hash of the label, folded into the parent's seed. *)
let hash_label label =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001B3L)
    label;
  !h

let split t ~label =
  { state = mix64 (Int64.logxor t.state (hash_label label)); cached_normal = None }

let int t bound =
  assert (bound > 0);
  (* mask to 62 bits: Int64.to_int keeps the low 63 bits and would
     otherwise interpret bit 62 as the OCaml int's sign *)
  let v = Int64.to_int (Int64.shift_right_logical (int64 t) 1) land max_int in
  v mod bound

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  v /. 9007199254740992.0 *. bound

let bool t p = float t 1.0 < p

let normal t ~mean ~sigma =
  match t.cached_normal with
  | Some z ->
      t.cached_normal <- None;
      mean +. (sigma *. z)
  | None ->
      let rec draw () =
        let u = float t 1.0 in
        if u <= 1e-12 then draw () else u
      in
      let u1 = draw () and u2 = float t 1.0 in
      let r = sqrt (-2.0 *. log u1) in
      let theta = 2.0 *. Float.pi *. u2 in
      t.cached_normal <- Some (r *. sin theta);
      mean +. (sigma *. r *. cos theta)

let geometric t ~mean =
  assert (mean >= 1.0);
  let u =
    let rec draw () =
      let u = float t 1.0 in
      if u <= 1e-12 then draw () else u
    in
    draw ()
  in
  let x = -.mean *. log u in
  max 1 (int_of_float (ceil x))
