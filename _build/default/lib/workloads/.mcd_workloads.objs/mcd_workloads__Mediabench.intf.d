lib/workloads/mediabench.mli: Workload
