(* Tests for the on-line attack/decay controller and the policy zoo,
   driven with synthetic samples. *)

module AD = Mcd_control.Attack_decay
module Policy = Mcd_control.Policy
module Policies = Mcd_control.Policies
module Controller = Mcd_cpu.Controller
module Domain = Mcd_domains.Domain
module Freq = Mcd_domains.Freq
module Reconfig = Mcd_domains.Reconfig
module Walker = Mcd_isa.Walker

let qcheck ?(seed = 0xc0de) t =
  QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| seed |]) t

let sample ?(elapsed = 10_000) ?(retired = 5_000) ?(l1d = 0) ?(l2 = 0)
    ~int_occ ~fp_occ ~mem_occ () =
  let occ = Array.make Domain.count 0.0 in
  occ.(Domain.index Domain.Integer) <- int_occ;
  occ.(Domain.index Domain.Floating) <- fp_occ;
  occ.(Domain.index Domain.Memory) <- mem_occ;
  {
    Controller.elapsed_cycles = elapsed;
    avg_occupancy = occ;
    retired;
    total_retired = retired;
    l1d_misses = l1d;
    l2_misses = l2;
    target_mhz = Array.make Domain.count Freq.fmax_mhz;
    current_mhz = Array.make Domain.count (float_of_int Freq.fmax_mhz);
  }

let feed ctl samples =
  let last = ref None in
  List.iteri
    (fun i s ->
      match ctl.Controller.on_sample s ~now:(i * 10_000_000) with
      | Some setting -> last := Some setting
      | None -> ())
    samples;
  !last

let test_idle_fp_plunges () =
  let ctl = AD.controller () in
  let samples =
    List.init 12 (fun _ -> sample ~int_occ:8.0 ~fp_occ:0.0 ~mem_occ:10.0 ())
  in
  match feed ctl samples with
  | Some setting ->
      Alcotest.(check int) "fp plunged to floor" Freq.fmin_mhz
        (Reconfig.get setting Domain.Floating)
  | None -> Alcotest.fail "controller never reconfigured"

let test_backlogged_domain_stays_fast () =
  let ctl = AD.controller () in
  let samples =
    List.init 12 (fun _ -> sample ~int_occ:14.0 ~fp_occ:0.0 ~mem_occ:5.0 ())
  in
  match feed ctl samples with
  | Some setting ->
      Alcotest.(check int) "backlogged integer stays at fmax" Freq.fmax_mhz
        (Reconfig.get setting Domain.Integer)
  | None -> Alcotest.fail "controller never reconfigured"

let test_low_util_decays () =
  let ctl = AD.controller () in
  (* integer lightly used and IPC steady: should drift downward *)
  let samples =
    List.init 30 (fun _ -> sample ~int_occ:1.5 ~fp_occ:6.0 ~mem_occ:10.0 ())
  in
  match feed ctl samples with
  | Some setting ->
      Alcotest.(check bool) "integer decayed" true
        (Reconfig.get setting Domain.Integer < Freq.fmax_mhz)
  | None -> Alcotest.fail "controller never reconfigured"

let test_guard_reverts_on_ipc_drop () =
  let ctl = AD.controller () in
  (* run stable, then decay happens; afterwards IPC collapses: the guard
     must push the frequency back up *)
  let stable =
    List.init 6 (fun _ ->
        sample ~retired:6_000 ~int_occ:1.5 ~fp_occ:5.0 ~mem_occ:10.0 ())
  in
  let collapsed =
    List.init 8 (fun _ ->
        sample ~retired:1_000 ~int_occ:1.5 ~fp_occ:5.0 ~mem_occ:10.0 ())
  in
  let _ = feed ctl stable in
  let after = feed ctl collapsed in
  match after with
  | Some setting ->
      (* after reverts and cooldowns the integer frequency should not be
         at the floor *)
      Alcotest.(check bool) "guard kept frequency off the floor" true
        (Reconfig.get setting Domain.Integer > Freq.fmin_mhz)
  | None ->
      (* no reconfiguration at all also means no runaway decay *)
      ()

let test_guard_revert_is_exact () =
  (* Regression: the guard used to undo a decay_step_mhz (50) decay by
     adding attack_step_mhz (150), overshooting the pre-decay frequency
     by 100 MHz. Drive the integer domain down to 700 MHz with two idle
     plunges, trigger one decay to 650, then collapse the IPC so the
     guard fires: it must restore exactly 700 MHz, not 800. *)
  let ctl = AD.controller () in
  (* three idle samples: prev_util primes on the first, the next two
     plunge 1000 -> 850 -> 700 *)
  let idle =
    List.init 3 (fun _ -> sample ~int_occ:0.1 ~fp_occ:6.0 ~mem_occ:30.0 ())
  in
  (* light-but-present utilisation with steady IPC: decays 700 -> 650
     and arms the guard (pending_check = 3) *)
  let decay = [ sample ~int_occ:0.8 ~fp_occ:6.0 ~mem_occ:30.0 () ] in
  (* IPC collapses while utilisation holds: when the pending check
     expires the guard must revert the decay *)
  let collapsed =
    List.init 3 (fun _ ->
        sample ~retired:500 ~int_occ:0.8 ~fp_occ:6.0 ~mem_occ:30.0 ())
  in
  let last = feed ctl (idle @ decay @ collapsed) in
  match last with
  | Some setting ->
      Alcotest.(check int) "revert restores the exact pre-decay frequency"
        700
        (Reconfig.get setting Domain.Integer)
  | None -> Alcotest.fail "guard never fired"

let test_attack_on_rising_util () =
  let ctl = AD.controller () in
  (* establish low utilisation, decay a bit, then a surge *)
  let low =
    List.init 10 (fun _ -> sample ~int_occ:1.0 ~fp_occ:2.0 ~mem_occ:5.0 ())
  in
  let surge = [ sample ~int_occ:19.0 ~fp_occ:2.0 ~mem_occ:5.0 () ] in
  let _ = feed ctl low in
  match feed ctl surge with
  | Some setting ->
      Alcotest.(check int) "deep backlog jumps to fmax" Freq.fmax_mhz
        (Reconfig.get setting Domain.Integer)
  | None -> Alcotest.fail "no reaction to surge"

let test_front_end_never_scaled () =
  let ctl = AD.controller () in
  let samples =
    List.init 20 (fun _ -> sample ~int_occ:0.0 ~fp_occ:0.0 ~mem_occ:0.0 ())
  in
  match feed ctl samples with
  | Some setting ->
      Alcotest.(check int) "front-end fixed" Freq.fmax_mhz
        (Reconfig.get setting Domain.Front_end)
  | None -> Alcotest.fail "controller never reconfigured"

let test_markers_ignored () =
  let ctl = AD.controller () in
  let r =
    ctl.Controller.on_marker (Walker.Enter_func { fid = 0; site_id = None })
      ~now:0
  in
  Alcotest.(check bool) "no marker reaction" true (r = Controller.no_reaction)

let test_params_interval_exposed () =
  let p = { AD.default_params with AD.interval_cycles = 1234 } in
  let ctl = AD.controller ~params:p () in
  Alcotest.(check int) "interval" 1234 ctl.Controller.sample_interval_cycles

let test_revert_clears_idle_streak () =
  (* Regression: the revert path used to leave [idle_streak] as the
     pending window had accumulated it, so a revert sample whose own
     utilisation was idle pushed the streak to 2 and the plunge branch
     (which ignores the revert cooldown) undid the revert by
     attack_step_mhz in the very same sample. Drive: prime, decay
     (pending = 3), one dead-zone sample, one idle sample (streak 1),
     then an idle sample with collapsed IPC — the guard reverts to the
     pre-decay 1000 MHz and, with the streak cleared, must NOT plunge. *)
  let ctl = AD.controller () in
  let s ?(retired = 6_000) int_occ =
    sample ~retired ~int_occ ~fp_occ:6.0 ~mem_occ:20.0 ()
  in
  let last =
    feed ctl
      [
        s 1.0 (* prime prev_util at 0.05 *);
        s 1.0 (* decay: 1000 -> 950, pending_check = 3 *);
        s 0.6 (* dead zone, pending 3 -> 2, streak stays 0 *);
        s ~retired:500 0.2 (* idle, pending 2 -> 1, streak 1 *);
        s ~retired:500 0.2
        (* pending 1 -> 0 with collapsed IPC: revert to 1000; the idle
           streak would hit 2 here if the revert did not clear it *);
      ]
  in
  match last with
  | Some setting ->
      Alcotest.(check int) "revert survives its own idle sample" 1000
        (Reconfig.get setting Domain.Integer)
  | None -> Alcotest.fail "guard never fired"

(* --- Policies --------------------------------------------------------- *)

let test_fixed_policy_fires_once () =
  let setting =
    Reconfig.make ~front_end:1000 ~integer:500 ~floating:250 ~memory:1000
  in
  let ctl = (Policies.fixed setting).Policy.create () in
  let m = Walker.Enter_func { fid = 0; site_id = None } in
  let r1 = ctl.Controller.on_marker m ~now:0 in
  let r2 = ctl.Controller.on_marker m ~now:1 in
  Alcotest.(check bool) "first marker sets" true (r1.Controller.set = Some setting);
  Alcotest.(check bool) "second marker silent" true (r2.Controller.set = None)

let test_fixed_policy_value_is_reusable () =
  (* Regression: the armed flag used to live in the policy value, so a
     second run with the same value never applied its setting. [create]
     must return a controller that fires afresh every time. *)
  let setting =
    Reconfig.make ~front_end:1000 ~integer:500 ~floating:250 ~memory:1000
  in
  let p = Policies.fixed setting in
  let m = Walker.Enter_func { fid = 0; site_id = None } in
  let fires () =
    let ctl = p.Policy.create () in
    (ctl.Controller.on_marker m ~now:0).Controller.set = Some setting
  in
  Alcotest.(check bool) "first run fires" true (fires ());
  Alcotest.(check bool) "second run fires too" true (fires ())

let test_baseline_policy_inert () =
  let ctl = Policies.baseline.Policy.create () in
  let m = Walker.Enter_func { fid = 0; site_id = None } in
  Alcotest.(check bool) "no reaction" true
    (ctl.Controller.on_marker m ~now:0 = Controller.no_reaction);
  Alcotest.(check int) "no sampling" 0 ctl.Controller.sample_interval_cycles

let test_registry_labels_unique () =
  let labels = Policies.names () in
  Alcotest.(check int) "labels are unique"
    (List.length labels)
    (List.length (List.sort_uniq compare labels));
  Alcotest.(check bool) "at least six contenders" true
    (List.length (Policies.contenders ()) >= 6);
  List.iter
    (fun l ->
      match Policies.by_name l with
      | Some p -> Alcotest.(check string) "by_name roundtrip" l p.Policy.label
      | None -> Alcotest.failf "by_name %S misses" l)
    labels

let test_same_name_params_distinct_fragments () =
  let a = Policies.online () and b = Policies.online_eager () in
  Alcotest.(check string) "one cache-key name" a.Policy.name b.Policy.name;
  Alcotest.(check bool) "distinct key fragments" true
    (Policy.key_fragment a <> Policy.key_fragment b)

(* The zoo contract, property-tested over random sample streams: every
   emitted setting is on the legal frequency grid, and no policy
   changes a domain's frequency while its declared cooldown is still
   running. *)
let prop_zoo_settings_legal =
  let gen =
    QCheck.(
      list_of_size (Gen.int_range 10 40)
        (quad (float_range 0.0 24.0) (float_range 0.0 16.0)
           (float_range 0.0 70.0)
           (pair (int_range 100 9_000) (int_range 0 400))))
  in
  QCheck.Test.make ~name:"zoo: legal grid settings, cooldown honoured"
    ~count:30 gen
    (fun stream ->
      List.for_all
        (fun p ->
          let ctl = p.Policy.create () in
          let last_change = Array.make Domain.count (-1_000_000) in
          let prev = Array.make Domain.count Freq.fmax_mhz in
          List.for_all Fun.id
            (List.mapi
               (fun k (int_occ, fp_occ, (mem_occ : float), (retired, l2)) ->
                 match
                   ctl.Controller.on_sample
                     (sample ~retired ~l1d:(l2 * 3) ~l2 ~int_occ ~fp_occ
                        ~mem_occ ())
                     ~now:(k * 10_000_000)
                 with
                 | None -> true
                 | Some setting ->
                     List.for_all
                       (fun d ->
                         let i = Domain.index d in
                         let f = Reconfig.get setting d in
                         let legal =
                           Freq.is_step f && f >= Freq.fmin_mhz
                           && f <= Freq.fmax_mhz
                         in
                         let cooled =
                           f = prev.(i)
                           || p.Policy.cooldown_intervals = 0
                           || k - last_change.(i)
                              >= p.Policy.cooldown_intervals
                         in
                         if f <> prev.(i) then begin
                           prev.(i) <- f;
                           last_change.(i) <- k
                         end;
                         legal && cooled)
                       Domain.all)
               stream))
        (Policies.all ()))

let suite =
  [
    ("idle fp plunges", `Quick, test_idle_fp_plunges);
    ("backlogged domain stays fast", `Quick, test_backlogged_domain_stays_fast);
    ("low utilisation decays", `Quick, test_low_util_decays);
    ("guard reverts on ipc drop", `Quick, test_guard_reverts_on_ipc_drop);
    ("guard revert is exact", `Quick, test_guard_revert_is_exact);
    ("revert clears the idle streak", `Quick, test_revert_clears_idle_streak);
    ("attack on rising utilisation", `Quick, test_attack_on_rising_util);
    ("front-end never scaled", `Quick, test_front_end_never_scaled);
    ("markers ignored", `Quick, test_markers_ignored);
    ("params interval exposed", `Quick, test_params_interval_exposed);
    ("fixed policy fires once", `Quick, test_fixed_policy_fires_once);
    ( "fixed policy value is reusable",
      `Quick,
      test_fixed_policy_value_is_reusable );
    ("baseline policy inert", `Quick, test_baseline_policy_inert);
    ("registry labels unique", `Quick, test_registry_labels_unique);
    ( "same name, different params, distinct fragments",
      `Quick,
      test_same_name_params_distinct_fragments );
    qcheck prop_zoo_settings_legal;
  ]
