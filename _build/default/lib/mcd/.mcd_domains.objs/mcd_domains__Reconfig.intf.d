lib/mcd/reconfig.mli: Domain Dvfs Format Mcd_util
