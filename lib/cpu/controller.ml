type sample = {
  elapsed_cycles : int;
  avg_occupancy : float array;
  retired : int;
  total_retired : int;
  l1d_misses : int;
  l2_misses : int;
  target_mhz : int array;
  current_mhz : float array;
}

type reaction = {
  stall_cycles : int;
  table_reads : int;
  set : Mcd_domains.Reconfig.setting option;
}

let no_reaction = { stall_cycles = 0; table_reads = 0; set = None }

type t = {
  name : string;
  on_marker : Mcd_isa.Walker.marker -> now:Mcd_util.Time.t -> reaction;
  on_sample :
    sample -> now:Mcd_util.Time.t -> Mcd_domains.Reconfig.setting option;
  sample_interval_cycles : int;
}

let nop =
  {
    name = "baseline";
    on_marker = (fun _ ~now:_ -> no_reaction);
    on_sample = (fun _ ~now:_ -> None);
    sample_interval_cycles = 0;
  }
