(** Persisting reconfiguration plans.

    Phase 4 of the paper produces an edited binary that can be shipped
    and run many times; here the analogous artifact is the plan — the
    per-node and per-unit frequency settings plus the retained analysis
    data (histograms and path models, so a loaded plan can still be
    re-thresholded at a different slowdown).

    The call tree itself is not serialized: it is a deterministic
    function of (program, training input, context), so the loader
    rebuilds it and verifies a structural fingerprint, refusing to apply
    a plan to a program that has changed shape since training.

    Loading is where reality can diverge from the profile, so it comes
    in two flavours. {!load_result} is the primary API: it returns
    typed diagnostics ({!Mcd_robust.Error.t}) instead of raising, and
    implements the degradation policy — unrecoverable corruption
    (unreadable file, bad header, malformed line, fingerprint mismatch,
    out-of-range frequency) rejects the plan with the full list of
    errors, while near-misses (an off-grid but in-range frequency, a
    NaN or negative histogram weight, a setting for a node the rebuilt
    tree does not have) are repaired in place and reported as warnings.
    {!load} is the legacy raising wrapper. *)

val fingerprint : Mcd_profiling.Call_tree.t -> string
(** Hex digest of the tree's structure (kinds, parentage, long flags). *)

val to_string : Plan.t -> string
(** The plan's canonical text rendering (the exact bytes {!save}
    writes). Table entries are emitted in sorted key order, so
    structurally equal plans render identically — the result cache
    stores this rendering and compares it byte-wise. *)

val save : Plan.t -> path:string -> unit
(** Write the plan to a text file ([to_string] contents). *)

type loaded = {
  plan : Plan.t;
  warnings : Mcd_robust.Error.t list;
      (** recoverable issues that were repaired: off-grid frequencies
          snapped to the legal grid, bad histogram weights dropped,
          entries for unknown nodes discarded, missing [context] /
          [slowdown] header lines replaced by their defaults *)
}

val of_string_result :
  ?path:string ->
  tree:Mcd_profiling.Call_tree.t ->
  string ->
  (loaded, Mcd_robust.Error.t list) result
(** Parse a plan from its text rendering, attaching it to a freshly
    rebuilt tree. [path] (default ["<string>"]) only labels
    diagnostics. Same degradation policy as {!load_result}. *)

val load_result :
  path:string ->
  tree:Mcd_profiling.Call_tree.t ->
  (loaded, Mcd_robust.Error.t list) result
(** Read a plan back, attaching it to a freshly rebuilt tree. [Error]
    carries every unrecoverable diagnostic found (never an empty
    list); the file's remaining content is not partially applied. *)

val load : path:string -> tree:Mcd_profiling.Call_tree.t -> Plan.t
(** Raising wrapper around {!load_result}: raises [Failure] with the
    rendered diagnostics if the file is malformed or the tree
    fingerprint does not match (the program or training input changed
    since {!save}); warnings are applied silently. New callers should
    prefer {!load_result}. *)

val validate : Plan.t -> Mcd_robust.Error.t list
(** The full validation pass over an in-memory plan: setting arity and
    frequency legality per node and per unit, histogram shape and
    weight sanity, node ids against the attached tree, slowdown
    tolerance. An empty list means the plan respects every invariant
    the run-time layers assume. *)
