(** Simple reference policies: fixed settings and one-shot writes.

    Used by tests, examples and ablation benches; the real contenders
    are the profile-driven policy ({!Mcd_core.Editor}) and the on-line
    controller ({!Attack_decay}). *)

val fixed : Mcd_domains.Reconfig.setting -> Mcd_cpu.Controller.t
(** Write the setting once, at the first marker, then never react. *)

val baseline : Mcd_cpu.Controller.t
(** The MCD baseline: all domains at full speed, no reactions. *)
