examples/media_codec.ml: Format List Mcd_core Mcd_experiments Mcd_power Mcd_profiling Mcd_util Mcd_workloads
