(** DVS invariants checked over (generated) runs.

    Following the assertion-based DVS design-exploration approach, each
    check examines a finished run — its end-of-run aggregates, or the
    interval series and decision events an {!Mcd_obs.Sink.t} captured —
    and reports violations instead of raising. The campaign
    ({!Mcd_experiments.Campaign}) evaluates these over swept spec
    distributions; {!render} makes them printable anywhere. *)

type violation = {
  check : string;  (** stable check identifier, e.g. ["floor"] *)
  detail : string;  (** human-oriented specifics *)
}

val render : violation list -> string
(** One ["check: detail"] line per violation; [""] when empty. *)

val run_sane : label:string -> Mcd_power.Metrics.run -> violation list
(** Structural sanity of one run: positive runtime/energy/instruction
    counts, per-domain energies non-negative and summing to the total,
    IPC within the machine's issue ceiling, sync penalties not
    exceeding crossings. *)

val degradation_bounded :
  label:string ->
  slowdown_pct:float ->
  epsilon_pct:float ->
  baseline:Mcd_power.Metrics.run ->
  Mcd_power.Metrics.run ->
  violation list
(** "Energy savings never comes with degradation above the slowdown
    target + ε": fires when the run saves energy over [baseline] yet
    degrades by more than [slowdown_pct +. epsilon_pct]. *)

val drift_bounded :
  label:string ->
  bound_pp:float ->
  baseline:Mcd_power.Metrics.run ->
  exact:Mcd_power.Metrics.run ->
  sampled:Mcd_power.Metrics.run ->
  violation list
(** Headline comparison drift between exact and phase-sampled runs of
    the same experiment stays within [bound_pp] percentage points on
    degradation, savings, and ED improvement. *)

val plan_floor_mhz : Mcd_core.Plan.t -> int array
(** Per-domain (index order) minimum frequency the plan ever mandates,
    over node and merged-unit settings; domains the plan never touches
    floor at [Mcd_domains.Freq.fmax_mhz] (the editor only ever dips to
    mandated settings and restores full speed around them). *)

val floor_respected :
  label:string ->
  floor_mhz:int array ->
  ipc_threshold:float ->
  Mcd_obs.Sink.t ->
  violation list
(** "No domain sits below the plan-mandated floor while IPC exceeds
    threshold": scans the sink's interval series; rows whose IPC is at
    most [ipc_threshold] are exempt, and a 2 MHz slack absorbs slew
    rounding. One violation per offending domain, carrying the count
    and first offending interval. *)

val decisions_on_grid : label:string -> Mcd_obs.Sink.t -> violation list
(** Every controller [Decision] event that carries a target setting
    names only legal grid frequencies ({!Mcd_domains.Freq.is_step})
    with one entry per domain. *)
