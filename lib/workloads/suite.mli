(** The full 19-benchmark suite (Table 2 order), plus a registry for
    dynamically generated workloads. *)

val all : Workload.t list
(** The static hand-built suite only; registered workloads are listed
    by {!registered}. *)

val register : Workload.t -> unit
(** Make a generated workload visible to {!find_opt}/{!by_name} (and so
    to every CLI/serve entry point that resolves workloads by name).
    Re-registering the same name replaces the entry — generation is
    deterministic per spec, so a name always denotes one behaviour.
    Raises [Invalid_argument] if the name shadows a built-in benchmark.
    Thread-safe (campaigns register from [Par] worker domains). *)

val registered : unit -> Workload.t list
(** Currently registered dynamic workloads, sorted by name. *)

val find_opt : string -> Workload.t option
(** Lookup by Table-2 name or registered name; [None] if unknown. *)

val by_name : string -> Workload.t
(** Raises [Invalid_argument] with the list of valid names if the
    benchmark is unknown — library call sites get a self-describing
    error instead of a bare [Not_found] backtrace. Use {!find_opt} for
    a non-raising lookup. *)

val names : string list

val media : Workload.t list
val spec_int : Workload.t list
val spec_fp : Workload.t list
