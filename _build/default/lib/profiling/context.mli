(** Definitions of "calling context" (Section 3.1 of the paper).

    A context definition decides which markers distinguish call-tree
    nodes: L tracks loops, C distinguishes call sites within a caller, P
    keeps the full path from main. The six definitions evaluated in the
    paper are [L+F+C+P], [L+F+P], [F+C+P], [F+P], plus the two
    simplified run-time schemes [L+F] and [F], which build their phase-1
    trees with paths ([L+F+P] / [F+P] respectively) but ignore calling
    history during production runs. *)

type t = private {
  name : string;
  loops : bool;  (** loops appear as tree nodes *)
  sites : bool;  (** call sites within a caller are distinguished *)
  paths : bool;  (** run-time reconfiguration tracks call chains *)
}

val lfcp : t
val lfp : t
val fcp : t
val fp : t
val lf : t
val f : t

val all : t list
(** The six definitions, most to least detailed. *)

val tree_context : t -> t
(** The context used to build the phase-1 call tree: [lf] uses [lfp]'s
    tree and [f] uses [fp]'s; the others use their own. *)

val of_name : string -> t
(** Lookup by [name]; raises [Not_found]. *)
