test/test_core.ml: Alcotest Array Filename Float Fun Gen Hashtbl List Mcd_core Mcd_cpu Mcd_domains Mcd_isa Mcd_profiling Mcd_util Option QCheck QCheck_alcotest String Sys
