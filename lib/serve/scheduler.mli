(** Concurrent job scheduler: priority queue → worker pool → job table,
    with in-flight request coalescing and admission control.

    Workers are OCaml 5 domains (the same substrate as
    {!Mcd_util.Par}), long-lived so {!Mcd_experiments.Runner}'s
    domain-local memo tables amortize across requests — the whole point
    of serving simulations from a daemon instead of one-shot processes.

    {b Coalescing.} Every request carries a content-addressed digest
    (see {!Mcd_experiments.Runner.request_key}); a submit whose digest
    matches a job already in the table — queued, running, or finished —
    attaches to that job instead of enqueueing a duplicate. Concurrent
    identical requests ride one computation; late identical requests
    are answered from the finished job (whose payload the persistent
    store also holds).

    {b Admission control.} The queue is bounded globally and
    per-client ({!Jobq}); a rejected submit reports
    {!Protocol.Overloaded} with a retry-after hint derived from an
    exponential moving average of recent job latencies — the hint grows
    when the service is slow, so backoff adapts to load.

    {b Failure isolation.} A [compute] that raises marks its job
    [Failed] with the exception and the backtrace captured at the raise
    site (the {!Mcd_util.Par} convention) and frees the worker; the
    queue keeps draining. A fault can fail its own request, never the
    service.

    {b Deadlines.} With [deadline_s] set, a watchdog domain fails any
    job whose compute has run past the deadline with a typed
    {!Mcd_robust.Error.Deadline_exceeded} message and spawns a
    replacement worker — OCaml domains cannot be killed, so the stuck
    worker is left to finish as a zombie whose result is discarded and
    which retires on return, shrinking the pool back to size. A hung
    compute therefore costs one job, never the pool.

    {b Observability.} All counters/gauges/events land in the supplied
    {!Mcd_obs.Sink.t} ([serve.*] instruments, [Decision]/[Degraded]
    control-ring events); the sink is only ever touched under the
    scheduler mutex, so exports taken through {!with_registry} are
    consistent. *)

type state =
  | Queued
  | Running
  | Done of string
  | Failed of { message : string; backtrace : string }

type info = {
  id : int;
  digest : string;
  request : Protocol.request;
  priority : Protocol.priority;
  client : string;
  state : state;
  submits : int;  (** 1 + number of coalesced duplicates *)
  latency_s : float;  (** submit→terminal; 0 until terminal *)
  timed_out : bool;
      (** the job was failed by the deadline watchdog; its [Failed]
          message is the rendered {!Mcd_robust.Error.Deadline_exceeded} *)
}

type t

val create :
  ?workers:int ->
  ?queue_max:int ->
  ?client_max:int ->
  ?deadline_s:float ->
  ?retry_after_cap_ms:int ->
  ?sink:Mcd_obs.Sink.t ->
  ?on_complete:(int -> unit) ->
  compute:(Protocol.request -> string) ->
  unit ->
  t
(** Spawns [workers] (default 1) worker domains. [queue_max] defaults
    to 64 waiting jobs, [client_max] to 16. [deadline_s] (default none)
    arms the per-job deadline watchdog. [retry_after_cap_ms] (default
    10000, floor 100) caps the EWMA-derived retry-after hint so one
    latency spike cannot teach clients to stay away for minutes.
    [on_complete] fires after a job turns terminal, outside the
    scheduler lock — in the worker domain normally, in the watchdog
    domain for deadline failures; the server uses it to poke its event
    loop through a self-pipe. [sink] defaults to a fresh single-domain
    sink. *)

val workers : t -> int
val queue_max : t -> int
val sink : t -> Mcd_obs.Sink.t

val latency_bins : int
(** Bin count of the power-of-two millisecond histograms ([serve.latency_ms],
    [serve.loop.*]): bin [i] covers [[2{^i} − 1, 2{^i+1} − 1)] ms, the last
    bin open-ended. *)

val latency_bin_of_ms : int -> int
(** The bin a millisecond value falls into (clamped to the last bin). *)

type admission =
  | Accepted of info
  | Coalesced of info
  | Rejected of Protocol.reject

val submit :
  t ->
  client:string ->
  priority:Protocol.priority ->
  digest:string ->
  Protocol.request ->
  admission

val restore : t -> next_id:int -> Journal.entry list -> int
(** Re-queue jobs recovered from the {!Journal}, preserving their
    original ids (a client reconnecting after a crash polls the id it
    was acked with) and advancing the id counter to at least [next_id]
    — the journal's {!Journal.recovery.next_id} high-water mark, which
    floors fresh allocations even when nothing replays, so ids of jobs
    that completed before the crash are never reissued to new
    submissions. Bypasses admission bounds — these jobs were admitted
    once already and must not be dropped to a smaller restart
    configuration. Entries whose id is already in the table are
    skipped; returns the number restored. Call before accepting
    connections. *)

val retry_after_ms : t -> int
(** The current backoff hint: EWMA latency in ms, floored at 100,
    capped at [retry_after_cap_ms]. Exposed for tests. *)

val find : t -> int -> info option

val queue_depth : t -> int
val busy : t -> int

val idle : t -> bool
(** No queued work and no busy worker. *)

val set_draining : t -> unit
(** Stop admitting: every subsequent {!submit} is [Rejected Draining].
    Queued and running jobs still complete. *)

val draining : t -> bool

val await_idle : ?timeout_s:float -> t -> bool
(** Poll until {!idle} (drain watchdog); [false] on timeout
    (default 60s). *)

val wait_job : ?timeout_s:float -> t -> int -> info option
(** Poll until the job is terminal; [None] on unknown job or timeout
    (default 60s). Convenience for in-process callers and tests — the
    server never blocks here. *)

val with_registry : t -> (Mcd_obs.Metrics.t -> 'a) -> 'a
(** Run [f] on the sink's registry under the scheduler mutex — the only
    safe way to read or extend it while workers are live. *)

val export_metrics : t -> string
(** {!Mcd_obs.Export.metrics_jsonl} of the sink, rendered under the
    scheduler mutex. *)

val shutdown : t -> unit
(** Stop the workers and join their domains. Idempotent. Queued jobs
    that never ran stay [Queued]; call {!set_draining} +
    {!await_idle} first for a graceful stop. *)
