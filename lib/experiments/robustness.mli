(** The robustness campaign: every fault class over the workload suite.

    The paper's premise is that a binary edited from a {e training}
    profile must still run safely on {e reference} inputs; this
    campaign stress-tests the stronger claim that it runs safely even
    when the shipped artifact or the reconfiguration hardware is
    broken. For each (workload, fault) cell it injects the fault
    ({!Mcd_robust.Inject}), routes the run through the degradation
    envelope ({!Mcd_robust.Degrade.guard} and the validating plan
    loader), and checks the contract:

    - {e no crash}: every cell completes, whatever the fault did;
    - {e bounded deviation}: the degraded run is never slower than the
      synchronous-machine bound — a globally synchronous core pinned at
      the frequency floor (every guard-sanitised setting keeps all
      domains at legal frequencies, so a whole machine at 250 MHz is
      the worst the degraded MCD machine could approach);
    - {e plan corruption degrades to baseline}: when the loader rejects
      a corrupt plan outright, the run {e is} the full-speed MCD
      baseline (zero measured slowdown). *)

type recovery =
  | Clean  (** the fault had no observable effect *)
  | Repaired
      (** validation or the watchdog intervened (clamp, reissue,
          fallback) and the run completed degraded *)
  | Rejected_to_baseline
      (** the plan failed validation and the workload ran the
          full-speed baseline instead *)

type outcome = {
  workload : string;
  fault : string;
  crashed : string option;  (** exception text if the cell crashed *)
  recovery : recovery;
  load_diagnostics : int;  (** loader errors + warnings *)
  interventions : int;  (** {!Mcd_robust.Degrade.interventions} *)
  slowdown_pct : float;  (** vs the fault-free MCD baseline *)
  bound_pct : float;  (** the synchronous-machine bound for this cell *)
  within_bound : bool;
}

type report = {
  outcomes : outcome list;
  crashes : int;
  bound_violations : int;
}

val clean : report -> bool
(** No crashes and no bound violations. *)

val run :
  ?workloads:Mcd_workloads.Workload.t list ->
  ?faults:Mcd_robust.Inject.fault list ->
  seed:int ->
  unit ->
  report
(** Defaults: the full 19-workload suite, every fault class. All
    stochastic fault choices derive from [seed], so a campaign is
    reproducible. *)

val render : report -> string
(** Per-cell table plus a summary line. *)
