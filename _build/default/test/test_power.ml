(* Tests for the energy model and run metrics. *)

module Energy = Mcd_power.Energy
module Metrics = Mcd_power.Metrics
module Domain = Mcd_domains.Domain
module Dvfs = Mcd_domains.Dvfs
module Freq = Mcd_domains.Freq
module Time = Mcd_util.Time

let check_float = Alcotest.(check (float 1e-9))

let all_activities =
  [
    Energy.Fetch; Energy.Decode_rename; Energy.Rob_write; Energy.Retire;
    Energy.Iq_write_int; Energy.Iq_write_fp; Energy.Issue_int;
    Energy.Issue_fp; Energy.Int_alu_op; Energy.Int_mult_op; Energy.Fp_alu_op;
    Energy.Fp_mult_op; Energy.Regfile_int; Energy.Regfile_fp;
    Energy.L1i_access; Energy.L1d_access; Energy.L2_access; Energy.Lsq_op;
    Energy.Main_memory_access;
  ]

let test_base_costs_positive () =
  List.iter
    (fun a ->
      if Energy.base_pj a <= 0.0 then Alcotest.fail "non-positive base cost")
    all_activities

let test_domains_assigned () =
  Alcotest.(check bool) "memory access is external" true
    (Energy.domain_of Energy.Main_memory_access = None);
  Alcotest.(check bool) "fetch is front-end" true
    (Energy.domain_of Energy.Fetch = Some Domain.Front_end);
  Alcotest.(check bool) "fp op is fp domain" true
    (Energy.domain_of Energy.Fp_mult_op = Some Domain.Floating);
  Alcotest.(check bool) "l2 is memory domain" true
    (Energy.domain_of Energy.L2_access = Some Domain.Memory)

let test_charge_full_speed () =
  let acc = Energy.Accum.create () in
  let dvfs = Dvfs.create () in
  Energy.Accum.charge acc dvfs ~now:Time.zero Energy.Int_alu_op;
  check_float "charged at base" (Energy.base_pj Energy.Int_alu_op)
    (Energy.Accum.domain_pj acc Domain.Integer);
  check_float "total" (Energy.base_pj Energy.Int_alu_op)
    (Energy.Accum.total_pj acc)

let test_charge_scaled () =
  let acc = Energy.Accum.create () in
  let dvfs = Dvfs.create () in
  Dvfs.force dvfs Domain.Integer ~mhz:250;
  Energy.Accum.charge acc dvfs ~now:Time.zero Energy.Int_alu_op;
  let expected =
    Energy.base_pj Energy.Int_alu_op *. Freq.energy_scale 250.0
  in
  check_float "scaled by V^2" expected
    (Energy.Accum.domain_pj acc Domain.Integer)

let test_external_never_scaled () =
  let acc = Energy.Accum.create () in
  let dvfs = Dvfs.create () in
  Dvfs.force dvfs Domain.Memory ~mhz:250;
  Energy.Accum.charge acc dvfs ~now:Time.zero Energy.Main_memory_access;
  check_float "external at base" (Energy.base_pj Energy.Main_memory_access)
    (Energy.Accum.external_pj acc)

let test_clock_tick_scales_down () =
  let full = Energy.Accum.create () in
  let slow = Energy.Accum.create () in
  let dvfs_full = Dvfs.create () in
  let dvfs_slow = Dvfs.create () in
  Dvfs.force dvfs_slow Domain.Integer ~mhz:250;
  Energy.Accum.charge_clock_tick full dvfs_full ~now:Time.zero Domain.Integer;
  Energy.Accum.charge_clock_tick slow dvfs_slow ~now:Time.zero Domain.Integer;
  (* at 250 MHz a tick covers 4x the wall time, yet still costs less than
     a full-speed tick's clock energy would over that time *)
  Alcotest.(check bool) "cheaper ticks" true
    (Energy.Accum.domain_pj slow Domain.Integer
    < 4.0 *. Energy.Accum.domain_pj full Domain.Integer);
  Alcotest.(check bool) "positive" true
    (Energy.Accum.domain_pj slow Domain.Integer > 0.0)

let test_charge_raw () =
  let acc = Energy.Accum.create () in
  Energy.Accum.charge_raw acc (Some Domain.Floating) ~pj:2.5;
  Energy.Accum.charge_raw acc None ~pj:1.5;
  check_float "domain raw" 2.5 (Energy.Accum.domain_pj acc Domain.Floating);
  check_float "external raw" 1.5 (Energy.Accum.external_pj acc);
  check_float "total" 4.0 (Energy.Accum.total_pj acc)

(* --- Metrics --------------------------------------------------------- *)

let mk_run ~runtime_ps ~energy_pj ~instructions ~cycles =
  {
    Metrics.runtime_ps;
    energy_pj;
    per_domain_pj = Array.make 5 0.0;
    instructions;
    cycles_front = cycles;
    sync_crossings = 0;
    sync_penalties = 0;
    reconfigurations = 0;
    instr_points = 0;
    instr_overhead_ps = 0;
  }

let test_metrics_ipc () =
  let r = mk_run ~runtime_ps:1000 ~energy_pj:1.0 ~instructions:500 ~cycles:1000 in
  check_float "ipc" 0.5 (Metrics.ipc r)

let test_metrics_comparisons () =
  let base =
    mk_run ~runtime_ps:100_000 ~energy_pj:1000.0 ~instructions:1 ~cycles:1
  in
  let run =
    mk_run ~runtime_ps:110_000 ~energy_pj:800.0 ~instructions:1 ~cycles:1
  in
  check_float "degradation" 10.0 (Metrics.perf_degradation_pct ~baseline:base run);
  check_float "savings" 20.0 (Metrics.energy_savings_pct ~baseline:base run);
  (* ED: base = 1000 * 1e-7; run = 800 * 1.1e-7 -> improvement 12% *)
  check_float "ed improvement" 12.0 (Metrics.ed_improvement_pct ~baseline:base run)

let test_metrics_energy_delay () =
  let r = mk_run ~runtime_ps:2_000_000 ~energy_pj:500.0 ~instructions:1 ~cycles:1 in
  check_float "ed product" (500.0 *. 2e-6) (Metrics.energy_delay r)

let suite =
  [
    ("base costs positive", `Quick, test_base_costs_positive);
    ("domains assigned", `Quick, test_domains_assigned);
    ("charge full speed", `Quick, test_charge_full_speed);
    ("charge scaled", `Quick, test_charge_scaled);
    ("external never scaled", `Quick, test_external_never_scaled);
    ("clock tick scales down", `Quick, test_clock_tick_scales_down);
    ("charge raw", `Quick, test_charge_raw);
    ("metrics ipc", `Quick, test_metrics_ipc);
    ("metrics comparisons", `Quick, test_metrics_comparisons);
    ("metrics energy-delay", `Quick, test_metrics_energy_delay);
  ]
