(** Persisting reconfiguration plans.

    Phase 4 of the paper produces an edited binary that can be shipped
    and run many times; here the analogous artifact is the plan — the
    per-node and per-unit frequency settings plus the retained analysis
    data (histograms and path models, so a loaded plan can still be
    re-thresholded at a different slowdown).

    The call tree itself is not serialized: it is a deterministic
    function of (program, training input, context), so the loader
    rebuilds it and verifies a structural fingerprint, refusing to apply
    a plan to a program that has changed shape since training. *)

val fingerprint : Mcd_profiling.Call_tree.t -> string
(** Hex digest of the tree's structure (kinds, parentage, long flags). *)

val save : Plan.t -> path:string -> unit
(** Write the plan to a text file. *)

val load : path:string -> tree:Mcd_profiling.Call_tree.t -> Plan.t
(** Read a plan back, attaching it to a freshly rebuilt tree. Raises
    [Failure] if the file is malformed or the tree fingerprint does not
    match (the program or training input changed since [save]). *)
