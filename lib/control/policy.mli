(** First-class DVFS policies.

    A policy value is a {e description}: a stable name, a canonical
    parameter rendering, and a [create] function that builds a fresh
    {!Mcd_cpu.Controller.t} for one run. The two structural guarantees
    every consumer leans on:

    - {b fresh state per run} — controllers close over mutable state
      (armed flags, per-domain EWMA/PID accumulators), so a controller
      value is single-use. A policy value is reusable: each
      [Pipeline.run] gets its own controller from [create], and reusing
      one policy across runs can never leak state between them.
    - {b canonical cache identity} — [name] and [params] render into the
      [("policy", "name:p1:…:pn")] part of every {!Mcd_cache.Key}
      ({!key_fragment}), so two policies that could produce different
      results can never alias each other's cached objects, and the same
      policy at different parameters keys separately too.

    Policies whose controller is a cycle-driven feedback loop (it reads
    occupancy/IPC/miss samples) must be simulated exactly: phase
    sampling skips instances the loop would have reacted to, so
    [feedback = true] policies opt out of sampled mode and keep
    mode-independent cache keys (exactly as the on-line attack/decay
    controller always has). *)

type t = {
  name : string;  (** cache-key identity; shared by parameter variants *)
  label : string;
      (** unique registry/display id; equals [name] unless several
          parameterisations of one policy are registered *)
  doc : string;  (** one-line description for tables and [--help] *)
  params : string list;
      (** canonical ordered rendering of every knob that can change the
          run — the [params] of {!Mcd_cache.Key.policy_fragment} *)
  feedback : bool;
      (** cycle-driven feedback loop: simulate exactly, never sampled *)
  cooldown_intervals : int;
      (** declared minimum number of sample intervals between two
          frequency changes of the same domain (0 = unconstrained).
          Tested as a contract by the zoo property suite. *)
  create : ?sink:Mcd_obs.Sink.t -> unit -> Mcd_cpu.Controller.t;
      (** build a fresh single-use controller (fresh mutable state) *)
}

val make :
  name:string ->
  ?label:string ->
  ?doc:string ->
  ?params:string list ->
  ?feedback:bool ->
  ?cooldown_intervals:int ->
  (?sink:Mcd_obs.Sink.t -> unit -> Mcd_cpu.Controller.t) ->
  t
(** [feedback] defaults to [true] (the safe direction: exact
    simulation), [params] to [[]], [label] to [name]. *)

val key_fragment : t -> (string * string) list
(** {!Mcd_cache.Key.policy_fragment} over [name]/[params] — the one
    rendering the runner's cache keys and any request-coalescing
    identity must share. *)

val id : t -> string
(** [label] plus a short digest of [params]: a compact process-local
    identity for memo tables and log lines (not a cache key). *)

val scaled_domains : Mcd_domains.Domain.t list
(** The three back-end domains every zoo policy scales; the front end
    is never scaled (as in the paper and the original on-line
    proposal). *)

val queue_capacity : Mcd_domains.Domain.t -> float
(** Capacity used to normalise the domain-owned backlog into a
    utilisation in [0, 1] (issue-queue / LSQ / fetch-buffer sizes). *)

val utilization : Mcd_cpu.Controller.sample -> Mcd_domains.Domain.t -> float
(** [avg_occupancy / queue_capacity] for one domain. *)

(** Per-domain cooldown timers, in units of sample intervals — the
    shared helper behind every zoo policy's [cooldown_intervals]
    contract. Call {!tick} once at the top of each [on_sample], gate
    frequency changes on {!ready}, and {!arm} the domain after a
    change. *)
module Cooldown : sig
  type timers

  val create : intervals:int -> timers
  (** One timer per {!Mcd_domains.Domain.index}, all expired. *)

  val tick : timers -> unit
  (** Advance one sample interval (decrement every armed timer). *)

  val ready : timers -> int -> bool
  (** [ready t i]: domain [i] may change frequency this interval. *)

  val arm : timers -> int -> unit
  (** Start domain [i]'s cooldown ([intervals] ticks until ready;
      with [intervals = 0] the domain is ready immediately). *)
end
