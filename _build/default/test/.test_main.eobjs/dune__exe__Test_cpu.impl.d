test/test_cpu.ml: Alcotest Array Format List Mcd_cpu Mcd_domains Mcd_isa Mcd_power QCheck QCheck_alcotest String
