module Controller = Mcd_cpu.Controller
module Domain = Mcd_domains.Domain
module Freq = Mcd_domains.Freq
module Reconfig = Mcd_domains.Reconfig
module Ckey = Mcd_cache.Key

type params = {
  interval_cycles : int;
  setpoint : float;
  kp : float;
  ki : float;
  kd : float;
  integral_clamp : float;
  cooldown : int;
}

(* Gains are in frequency-range units: an error of 1.0 (a full queue
   against an empty setpoint) with kp = 1.0 commands the whole
   fmin..fmax span in one interval. The defaults are deliberately
   mild — the plant (queue occupancy vs frequency) has delay from the
   issue queues themselves, so an aggressive loop oscillates. *)
let default_params =
  {
    interval_cycles = 10_000;
    setpoint = 0.30;
    kp = 1.6;
    ki = 0.45;
    kd = 0.35;
    integral_clamp = 1.2;
    cooldown = 2;
  }

let params_id p =
  [
    string_of_int p.interval_cycles;
    Ckey.float_param p.setpoint;
    Ckey.float_param p.kp;
    Ckey.float_param p.ki;
    Ckey.float_param p.kd;
    Ckey.float_param p.integral_clamp;
    string_of_int p.cooldown;
  ]

let span = float_of_int (Freq.fmax_mhz - Freq.fmin_mhz)

let controller ?(params = default_params) ?sink () =
  let cur = Array.make Domain.count Freq.fmax_mhz in
  (* the continuous command each PID loop integrates on; [cur] is its
     snap to the legal frequency grid *)
  let cmd = Array.make Domain.count (float_of_int Freq.fmax_mhz) in
  let integral = Array.make Domain.count 0.0 in
  let prev_err = Array.make Domain.count nan in
  let cooldown = Policy.Cooldown.create ~intervals:params.cooldown in
  let on_sample (s : Controller.sample) ~now =
    Policy.Cooldown.tick cooldown;
    let changed = ref false in
    List.iter
      (fun d ->
        let i = Domain.index d in
        (* positive error = more backlog than the setpoint tolerates =
           the domain is too slow *)
        let err = min 1.5 (Policy.utilization s d) -. params.setpoint in
        integral.(i) <-
          Float.max (-.params.integral_clamp)
            (Float.min params.integral_clamp (integral.(i) +. err));
        let deriv =
          if Float.is_nan prev_err.(i) then 0.0 else err -. prev_err.(i)
        in
        prev_err.(i) <- err;
        let delta =
          ((params.kp *. err) +. (params.ki *. integral.(i))
          +. (params.kd *. deriv))
          *. span
        in
        cmd.(i) <-
          Float.max
            (float_of_int Freq.fmin_mhz)
            (Float.min (float_of_int Freq.fmax_mhz) (cmd.(i) +. delta));
        let snapped = Freq.clamp (int_of_float (Float.round cmd.(i))) in
        if snapped <> cur.(i) && Policy.Cooldown.ready cooldown i then begin
          (match sink with
          | None -> ()
          | Some snk ->
              Mcd_obs.Sink.decision snk ~t_ps:now ~source:"pid"
                ~trigger:Mcd_obs.Sink.Sample
                ~detail:
                  (Printf.sprintf "err %+.3f %s %d->%d MHz" err
                     (Domain.name d) cur.(i) snapped)
                ());
          cur.(i) <- snapped;
          Policy.Cooldown.arm cooldown i;
          changed := true
        end)
      Policy.scaled_domains;
    if !changed then
      Some
        (Reconfig.make ~front_end:Freq.fmax_mhz
           ~integer:cur.(Domain.index Domain.Integer)
           ~floating:cur.(Domain.index Domain.Floating)
           ~memory:cur.(Domain.index Domain.Memory))
    else None
  in
  {
    Controller.name = "pid";
    on_marker = (fun _ ~now:_ -> Controller.no_reaction);
    on_sample;
    sample_interval_cycles = params.interval_cycles;
  }

let policy ?label ?(params = default_params) () =
  Policy.make ~name:"pid" ?label
    ~doc:"per-domain PID loop on a utilization setpoint"
    ~params:(params_id params) ~feedback:true
    ~cooldown_intervals:params.cooldown
    (fun ?sink () -> controller ~params ?sink ())
