lib/cpu/pipeline.mli: Config Controller Mcd_isa Mcd_power Probe
