lib/mcd/reconfig.ml: Array Domain Dvfs Format Freq List
