lib/experiments/tables.ml: Format List Mcd_cpu Mcd_isa Mcd_profiling Mcd_util Mcd_workloads Printf
