module Error = Mcd_robust.Error

let version = 1

(* --- token encoding ---------------------------------------------------- *)

(* Tokens are space-separated, messages newline-terminated, so values
   percent-encode exactly those two characters plus '%' itself — the
   same escaping Mcd_cache.Key uses for canonical key lines. *)
let encode_value v =
  let plain =
    String.for_all (fun c -> c <> ' ' && c <> '%' && c <> '\n') v
  in
  if plain then v
  else begin
    let buf = Buffer.create (String.length v + 8) in
    String.iter
      (fun c ->
        match c with
        | ' ' -> Buffer.add_string buf "%20"
        | '%' -> Buffer.add_string buf "%25"
        | '\n' -> Buffer.add_string buf "%0a"
        | c -> Buffer.add_char buf c)
      v;
    Buffer.contents buf
  end

let decode_value v =
  if not (String.contains v '%') then Ok v
  else begin
    let n = String.length v in
    let buf = Buffer.create n in
    let rec go i =
      if i >= n then Ok (Buffer.contents buf)
      else if v.[i] <> '%' then begin
        Buffer.add_char buf v.[i];
        go (i + 1)
      end
      else if i + 2 >= n then Error (Printf.sprintf "truncated escape in %S" v)
      else
        match String.sub v (i + 1) 2 with
        | "20" -> Buffer.add_char buf ' '; go (i + 3)
        | "25" -> Buffer.add_char buf '%'; go (i + 3)
        | "0a" -> Buffer.add_char buf '\n'; go (i + 3)
        | esc -> Error (Printf.sprintf "bad escape %%%s in %S" esc v)
    in
    go 0
  end

(* --- request vocabulary ------------------------------------------------ *)

type priority = High | Normal | Low

let priority_name = function High -> "high" | Normal -> "normal" | Low -> "low"

let priority_of_name = function
  | "high" -> Some High
  | "normal" -> Some Normal
  | "low" -> Some Low
  | _ -> None

let priority_level = function High -> 0 | Normal -> 1 | Low -> 2

type policy = Baseline | Offline | Online | Profile

let policy_name = function
  | Baseline -> "baseline"
  | Offline -> "offline"
  | Online -> "online"
  | Profile -> "profile"

let policy_of_name = function
  | "baseline" -> Some Baseline
  | "offline" -> Some Offline
  | "online" -> Some Online
  | "profile" -> Some Profile
  | _ -> None

type request = {
  workload : string;
  policy : policy;
  context : string;
  slowdown_pct : float;
}

let request ?(policy = Profile) ?(context = "L+F") ?(slowdown_pct = 7.0)
    workload =
  { workload; policy; context; slowdown_pct }

(* --- messages ---------------------------------------------------------- *)

type command =
  | Ping
  | Submit of { priority : priority; request : request }
  | Status of int
  | Wait of int
  | Result of int
  | Stats
  | Drain
  | Quit

type state = Queued | Running | Done | Failed of string

let state_name = function
  | Queued -> "queued"
  | Running -> "running"
  | Done -> "done"
  | Failed _ -> "failed"

type reject =
  | Overloaded of { queue_depth : int; limit : int; retry_after_ms : int }
  | Draining
  | Bad_request of string
  | Unknown_job of int
  | Job_failed of { id : int; message : string }
  | Deadline of { id : int; deadline_ms : int }
  | Not_done of int

type reply =
  | Ready of { version : int; workers : int; queue_max : int }
  | Pong
  | Queued_reply of { id : int; digest : string; coalesced : bool }
  | Status_reply of { id : int; state : state }
  | Payload of { id : int; bytes : int }
  | Stats_payload of { bytes : int }
  | Draining_reply
  | Rejected of reject

(* --- rendering --------------------------------------------------------- *)

let kv k v = Printf.sprintf "%s=%s" k (encode_value v)
let kvi k v = Printf.sprintf "%s=%d" k v

(* The seq token rides immediately after the verb. It is optional on
   the wire (a one-shot client never sends one) and opaque to the
   server, which echoes it verbatim on whichever reply answers the
   command — the correlation a pipelined client matches on. *)
let with_seq seq line =
  match seq with
  | None -> line
  | Some s -> (
      match String.index_opt line ' ' with
      | None -> line ^ " " ^ kvi "seq" s
      | Some i ->
          String.concat ""
            [
              String.sub line 0 i; " "; kvi "seq" s;
              String.sub line i (String.length line - i);
            ])

let render_command_body = function
  | Ping -> "ping"
  | Submit { priority; request = r } ->
      String.concat " "
        [
          "submit";
          kv "pri" (priority_name priority);
          kv "workload" r.workload;
          kv "policy" (policy_name r.policy);
          kv "context" r.context;
          kv "slowdown" (Mcd_cache.Key.float_param r.slowdown_pct);
        ]
  | Status id -> "status " ^ kvi "id" id
  | Wait id -> "wait " ^ kvi "id" id
  | Result id -> "result " ^ kvi "id" id
  | Stats -> "stats"
  | Drain -> "drain"
  | Quit -> "quit"

let render_command ?seq cmd = with_seq seq (render_command_body cmd)

let render_reply_body = function
  | Ready { version; workers; queue_max } ->
      Printf.sprintf "mcd-serve/%d ready %s %s" version
        (kvi "workers" workers)
        (kvi "queue-max" queue_max)
  | Pong -> "pong"
  | Queued_reply { id; digest; coalesced } ->
      String.concat " "
        [
          "queued"; kvi "id" id; kv "digest" digest;
          kvi "coalesced" (if coalesced then 1 else 0);
        ]
  | Status_reply { id; state } -> (
      let base =
        String.concat " " [ "status"; kvi "id" id; kv "state" (state_name state) ]
      in
      match state with
      | Failed message -> base ^ " " ^ kv "msg" message
      | Queued | Running | Done -> base)
  | Payload { id; bytes } -> String.concat " " [ "payload"; kvi "id" id; kvi "bytes" bytes ]
  | Stats_payload { bytes } -> "stats-payload " ^ kvi "bytes" bytes
  | Draining_reply -> "draining"
  | Rejected reject -> (
      match reject with
      | Overloaded { queue_depth; limit; retry_after_ms } ->
          String.concat " "
            [
              "error"; kv "code" "overloaded"; kvi "depth" queue_depth;
              kvi "limit" limit; kvi "retry-after-ms" retry_after_ms;
            ]
      | Draining -> "error code=draining"
      | Bad_request msg ->
          String.concat " " [ "error"; kv "code" "bad-request"; kv "msg" msg ]
      | Unknown_job id ->
          String.concat " " [ "error"; kv "code" "unknown-job"; kvi "id" id ]
      | Job_failed { id; message } ->
          String.concat " "
            [ "error"; kv "code" "failed"; kvi "id" id; kv "msg" message ]
      | Deadline { id; deadline_ms } ->
          String.concat " "
            [
              "error"; kv "code" "deadline"; kvi "id" id;
              kvi "deadline-ms" deadline_ms;
            ]
      | Not_done id ->
          String.concat " " [ "error"; kv "code" "not-done"; kvi "id" id ])

let render_reply ?seq reply = with_seq seq (render_reply_body reply)

(* --- parsing ----------------------------------------------------------- *)

let ( let* ) = Result.bind

(* Tokenize a line into its verb and key=value fields. Unknown keys are
   ignored (forward compatibility within a protocol version); duplicate
   keys keep the first occurrence. *)
let fields tokens =
  List.filter_map
    (fun tok ->
      match String.index_opt tok '=' with
      | None -> None
      | Some i ->
          Some
            ( String.sub tok 0 i,
              String.sub tok (i + 1) (String.length tok - i - 1) ))
    tokens

let field key fs =
  match List.assoc_opt key fs with
  | Some v -> decode_value v
  | None -> Error (Printf.sprintf "missing %s field" key)

let int_field key fs =
  let* v = field key fs in
  match int_of_string_opt v with
  | Some n -> Ok n
  | None -> Error (Printf.sprintf "bad %s value %S" key v)

let float_field key fs =
  let* v = field key fs in
  match float_of_string_opt v with
  | Some f when Float.is_finite f -> Ok f
  | _ -> Error (Printf.sprintf "bad %s value %S" key v)

let split line =
  String.split_on_char ' ' line |> List.filter (fun t -> t <> "")

let seq_field fs =
  match List.assoc_opt "seq" fs with
  | None -> Ok None
  | Some _ ->
      let* s = int_field "seq" fs in
      Ok (Some s)

let parse_command line =
  match split line with
  | [] -> Error "empty command"
  | verb :: rest -> (
      let fs = fields rest in
      let* seq = seq_field fs in
      let ok cmd = Ok (cmd, seq) in
      match verb with
      | "ping" -> ok Ping
      | "stats" -> ok Stats
      | "drain" -> ok Drain
      | "quit" -> ok Quit
      | "status" ->
          let* id = int_field "id" fs in
          ok (Status id)
      | "wait" ->
          let* id = int_field "id" fs in
          ok (Wait id)
      | "result" ->
          let* id = int_field "id" fs in
          ok (Result id)
      | "submit" ->
          let* pri = field "pri" fs in
          let* priority =
            match priority_of_name pri with
            | Some p -> Ok p
            | None -> Error (Printf.sprintf "unknown priority %S" pri)
          in
          let* workload = field "workload" fs in
          let* pol = field "policy" fs in
          let* policy =
            match policy_of_name pol with
            | Some p -> Ok p
            | None -> Error (Printf.sprintf "unknown policy %S" pol)
          in
          let* context = field "context" fs in
          let* slowdown_pct = float_field "slowdown" fs in
          ok (Submit { priority; request = { workload; policy; context; slowdown_pct } })
      | verb -> Error (Printf.sprintf "unknown command %S" verb))

let parse_state fs =
  let* s = field "state" fs in
  match s with
  | "queued" -> Ok Queued
  | "running" -> Ok Running
  | "done" -> Ok Done
  | "failed" ->
      let* msg = field "msg" fs in
      Ok (Failed msg)
  | s -> Error (Printf.sprintf "unknown state %S" s)

let parse_reply line =
  match split line with
  | [] -> Error "empty reply"
  | verb :: rest -> (
      let fs = fields rest in
      let* seq = seq_field fs in
      let ok reply = Ok (reply, seq) in
      match verb with
      | "pong" -> ok Pong
      | "draining" -> ok Draining_reply
      | "queued" ->
          let* id = int_field "id" fs in
          let* digest = field "digest" fs in
          let* coalesced = int_field "coalesced" fs in
          ok (Queued_reply { id; digest; coalesced = coalesced <> 0 })
      | "status" ->
          let* id = int_field "id" fs in
          let* state = parse_state fs in
          ok (Status_reply { id; state })
      | "payload" ->
          let* id = int_field "id" fs in
          let* bytes = int_field "bytes" fs in
          ok (Payload { id; bytes })
      | "stats-payload" ->
          let* bytes = int_field "bytes" fs in
          ok (Stats_payload { bytes })
      | "error" -> (
          let* code = field "code" fs in
          match code with
          | "overloaded" ->
              let* queue_depth = int_field "depth" fs in
              let* limit = int_field "limit" fs in
              let* retry_after_ms = int_field "retry-after-ms" fs in
              ok (Rejected (Overloaded { queue_depth; limit; retry_after_ms }))
          | "draining" -> ok (Rejected Draining)
          | "bad-request" ->
              let* msg = field "msg" fs in
              ok (Rejected (Bad_request msg))
          | "unknown-job" ->
              let* id = int_field "id" fs in
              ok (Rejected (Unknown_job id))
          | "failed" ->
              let* id = int_field "id" fs in
              let* message = field "msg" fs in
              ok (Rejected (Job_failed { id; message }))
          | "deadline" ->
              let* id = int_field "id" fs in
              let* deadline_ms = int_field "deadline-ms" fs in
              ok (Rejected (Deadline { id; deadline_ms }))
          | "not-done" ->
              let* id = int_field "id" fs in
              ok (Rejected (Not_done id))
          | code -> Error (Printf.sprintf "unknown error code %S" code))
      | verb -> (
          (* the greeting: "mcd-serve/<v> ready ..." *)
          match String.split_on_char '/' verb with
          | [ "mcd-serve"; v ] -> (
              (* key=value tokens (seq=, future extensions) may precede
                 the bare "ready" marker and are ignored, same as
                 unknown fields everywhere else in the grammar. *)
              match int_of_string_opt v with
              | Some version when List.mem "ready" rest ->
                  let* workers = int_field "workers" fs in
                  let* queue_max = int_field "queue-max" fs in
                  ok (Ready { version; workers; queue_max })
              | _ -> Error (Printf.sprintf "malformed greeting %S" line))
          | _ -> Error (Printf.sprintf "unknown reply %S" verb)))

(* --- incremental reply framing ----------------------------------------- *)

module Frames = struct
  type frame = { reply : reply; seq : int option; body : string option }

  (* [acc]/[off] form a consume-from-the-front buffer: [feed] appends,
     the decoder advances [off], and the consumed prefix is compacted
     away lazily (on the next append) so a long-lived connection never
     accumulates dead bytes. *)
  type t = {
    mutable acc : string;
    mutable off : int;
    mutable pending : (reply * int option * int) option;
        (** a payload header whose [bytes]-byte body (plus trailer) has
            not fully arrived yet *)
    mutable failed : string option;
    max_payload : int;
  }

  let default_max_payload = 64 * 1024 * 1024

  let create ?(max_payload = default_max_payload) () =
    { acc = ""; off = 0; pending = None; failed = None; max_payload }

  let feed t chunk =
    if String.length chunk > 0 then
      if t.off = 0 then t.acc <- t.acc ^ chunk
      else begin
        t.acc <-
          String.sub t.acc t.off (String.length t.acc - t.off) ^ chunk;
        t.off <- 0
      end

  let buffered t = String.length t.acc - t.off

  let trailer = "end\n"

  let fail t msg =
    t.failed <- Some msg;
    `Error msg

  (* A decode error is terminal: once framing desynchronizes there is
     no way to find the next frame boundary, so the connection must be
     torn down. *)
  let rec next t =
    match t.failed with
    | Some msg -> `Error msg
    | None -> (
        match t.pending with
        | Some (reply, seq, bytes) ->
            if buffered t < bytes + String.length trailer then `Await
            else begin
              let body = String.sub t.acc t.off bytes in
              let tl =
                String.sub t.acc (t.off + bytes) (String.length trailer)
              in
              if tl <> trailer then
                fail t
                  (Printf.sprintf "bad payload trailer %S (want %S)" tl
                     trailer)
              else begin
                t.off <- t.off + bytes + String.length trailer;
                t.pending <- None;
                `Frame { reply; seq; body = Some body }
              end
            end
        | None -> (
            match String.index_from_opt t.acc t.off '\n' with
            | None -> `Await
            | Some i -> (
                let line = String.sub t.acc t.off (i - t.off) in
                t.off <- i + 1;
                match parse_reply line with
                | Error reason ->
                    fail t (Printf.sprintf "%s (line %S)" reason line)
                | Ok ((Payload { bytes; _ } as reply), seq)
                | Ok ((Stats_payload { bytes } as reply), seq) ->
                    if bytes < 0 then
                      fail t (Printf.sprintf "negative payload size %d" bytes)
                    else if bytes > t.max_payload then
                      fail t
                        (Printf.sprintf
                           "payload of %d bytes exceeds the %d-byte cap"
                           bytes t.max_payload)
                    else begin
                      t.pending <- Some (reply, seq, bytes);
                      next t
                    end
                | Ok (reply, seq) -> `Frame { reply; seq; body = None })))
end

let error_of_reject = function
  | Overloaded { queue_depth; limit; retry_after_ms } ->
      Error.Overloaded { queue_depth; limit; retry_after_ms }
  | Draining -> Error.Draining { detail = "server shutting down" }
  | Bad_request msg ->
      Error.Protocol_violation { line = msg; reason = "rejected by server" }
  | Unknown_job id -> Error.Unknown_job { id }
  | Job_failed { id; message } ->
      Error.Runtime_fault
        { where = Printf.sprintf "job %d" id; detail = message }
  | Deadline { id; deadline_ms } -> Error.Deadline_exceeded { id; deadline_ms }
  | Not_done id ->
      Error.Protocol_violation
        { line = Printf.sprintf "id=%d" id; reason = "job not finished" }
