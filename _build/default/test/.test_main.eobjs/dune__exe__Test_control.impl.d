test/test_control.ml: Alcotest Array List Mcd_control Mcd_cpu Mcd_domains Mcd_isa
