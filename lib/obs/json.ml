type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Writer                                                             *)
(* ------------------------------------------------------------------ *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_literal f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_finite f then Buffer.add_string buf (float_literal f)
      else Buffer.add_string buf "null"
  | String s -> escape_string buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          write buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_string buf k;
          Buffer.add_char buf ':';
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parser: plain recursive descent over the input string.             *)
(* ------------------------------------------------------------------ *)

exception Parse_error of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let len = String.length word in
    if !pos + len <= n && String.sub s !pos len = word then begin
      pos := !pos + len;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let code = ref 0 in
    for _ = 1 to 4 do
      let d =
        match s.[!pos] with
        | '0' .. '9' as c -> Char.code c - Char.code '0'
        | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
        | _ -> fail "bad hex digit in \\u escape"
      in
      code := (!code * 16) + d;
      advance ()
    done;
    !code
  in
  let add_utf8 buf code =
    (* Encode a scalar value; surrogates degrade to U+FFFD. *)
    let code = if code >= 0xD800 && code <= 0xDFFF then 0xFFFD else code in
    if code < 0x80 then Buffer.add_char buf (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> advance (); Buffer.add_char buf '"'; loop ()
          | Some '\\' -> advance (); Buffer.add_char buf '\\'; loop ()
          | Some '/' -> advance (); Buffer.add_char buf '/'; loop ()
          | Some 'n' -> advance (); Buffer.add_char buf '\n'; loop ()
          | Some 'r' -> advance (); Buffer.add_char buf '\r'; loop ()
          | Some 't' -> advance (); Buffer.add_char buf '\t'; loop ()
          | Some 'b' -> advance (); Buffer.add_char buf '\b'; loop ()
          | Some 'f' -> advance (); Buffer.add_char buf '\012'; loop ()
          | Some 'u' ->
              advance ();
              add_utf8 buf (parse_hex4 ());
              loop ()
          | _ -> fail "bad escape")
      | Some c ->
          advance ();
          Buffer.add_char buf c;
          loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    if peek () = Some '-' then advance ();
    let digits () =
      let seen = ref false in
      let rec go () =
        match peek () with
        | Some '0' .. '9' ->
            seen := true;
            advance ();
            go ()
        | _ -> ()
      in
      go ();
      if not !seen then fail "expected digit"
    in
    digits ();
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        is_float := true;
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ());
    let text = String.sub s start (!pos - start) in
    if !is_float then Float (float_of_string text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> Float (float_of_string text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [ parse_value () ] in
          let rec loop () =
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items := parse_value () :: !items;
                loop ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          loop ();
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let fields = ref [ field () ] in
          let rec loop () =
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields := field () :: !fields;
                loop ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          loop ();
          Obj (List.rev !fields)
        end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) ->
      Error (Printf.sprintf "JSON parse error at offset %d: %s" at msg)

(* ------------------------------------------------------------------ *)
(* Accessors                                                          *)
(* ------------------------------------------------------------------ *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None
let to_list_opt = function List l -> Some l | _ -> None
let to_int_opt = function Int i -> Some i | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_string_opt = function String s -> Some s | _ -> None
let to_bool_opt = function Bool b -> Some b | _ -> None
