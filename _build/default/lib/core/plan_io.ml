module Call_tree = Mcd_profiling.Call_tree
module Context = Mcd_profiling.Context
module Histogram = Mcd_util.Histogram
module Domain = Mcd_domains.Domain
module Freq = Mcd_domains.Freq
module Reconfig = Mcd_domains.Reconfig

(* FNV-1a over a canonical rendering of the tree structure. *)
let fingerprint tree =
  let h = ref 0xCBF29CE484222325L in
  let mix s =
    String.iter
      (fun c ->
        h := Int64.logxor !h (Int64.of_int (Char.code c));
        h := Int64.mul !h 0x100000001B3L)
      s
  in
  Call_tree.iter tree ~f:(fun n ->
      let kind =
        match n.Call_tree.kind with
        | Call_tree.Root -> "R"
        | Call_tree.Func_node { fid; site } -> Printf.sprintf "F%d@%d" fid site
        | Call_tree.Loop_node { loop_id } -> Printf.sprintf "L%d" loop_id
      in
      mix
        (Printf.sprintf "%d:%s:%d:%b;" n.Call_tree.id kind n.Call_tree.parent
           n.Call_tree.long));
  Printf.sprintf "%016Lx" !h

let setting_to_string (s : Reconfig.setting) =
  String.concat "," (Array.to_list (Array.map string_of_int s))

let setting_of_string str =
  let parts = String.split_on_char ',' str in
  if List.length parts <> Domain.count then failwith "Plan_io: bad setting";
  Array.of_list (List.map int_of_string parts)

let floats_to_string arr =
  String.concat "," (Array.to_list (Array.map (Printf.sprintf "%h") arr))

let floats_of_string str =
  Array.of_list (List.map float_of_string (String.split_on_char ',' str))

let unit_to_string = function
  | Call_tree.Func_unit fid -> Printf.sprintf "func:%d" fid
  | Call_tree.Loop_unit id -> Printf.sprintf "loop:%d" id

let unit_of_string s =
  match String.split_on_char ':' s with
  | [ "func"; n ] -> Call_tree.Func_unit (int_of_string n)
  | [ "loop"; n ] -> Call_tree.Loop_unit (int_of_string n)
  | _ -> failwith "Plan_io: bad static unit"

let save (plan : Plan.t) ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc "mcd-dvfs-plan 1\n";
      Printf.fprintf oc "context %s\n" plan.Plan.context.Context.name;
      Printf.fprintf oc "slowdown %h\n" plan.Plan.slowdown_pct;
      Printf.fprintf oc "tree %s\n" (fingerprint plan.Plan.tree);
      Hashtbl.iter
        (fun id s -> Printf.fprintf oc "node %d %s\n" id (setting_to_string s))
        plan.Plan.node_settings;
      Hashtbl.iter
        (fun u s ->
          Printf.fprintf oc "unit %s %s\n" (unit_to_string u)
            (setting_to_string s))
        plan.Plan.unit_settings;
      Hashtbl.iter
        (fun id hists ->
          Array.iteri
            (fun d h ->
              let weights =
                Array.init (Histogram.bins h) (fun bin ->
                    Histogram.get h ~bin)
              in
              Printf.fprintf oc "hist %d %d %s\n" id d
                (floats_to_string weights))
            hists)
        plan.Plan.node_histograms;
      Hashtbl.iter
        (fun id (pm : Path_model.t) ->
          List.iter
            (fun (seg : Path_model.segment) ->
              Printf.fprintf oc "seg %d %h" id seg.Path_model.base_ps;
              List.iter
                (fun signature ->
                  Printf.fprintf oc " %s" (floats_to_string signature))
                seg.Path_model.signatures;
              Printf.fprintf oc "\n")
            pm.Path_model.segments)
        plan.Plan.node_paths)

let load ~path ~tree =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let context = ref Context.lf in
      let slowdown = ref 7.0 in
      let node_settings = Hashtbl.create 32 in
      let unit_settings = Hashtbl.create 32 in
      let node_histograms : (int, Histogram.t array) Hashtbl.t =
        Hashtbl.create 32
      in
      let node_paths : (int, Path_model.t) Hashtbl.t = Hashtbl.create 32 in
      let fp_checked = ref false in
      (match input_line ic with
      | "mcd-dvfs-plan 1" -> ()
      | _ -> failwith "Plan_io: not a plan file"
      | exception End_of_file -> failwith "Plan_io: empty file");
      (try
         while true do
           let line = input_line ic in
           match String.split_on_char ' ' line with
           | [ "context"; name ] -> context := Context.of_name name
           | [ "slowdown"; v ] -> slowdown := float_of_string v
           | [ "tree"; fp ] ->
               fp_checked := true;
               if fp <> fingerprint tree then
                 failwith
                   "Plan_io: tree fingerprint mismatch (program or training \
                    input changed since the plan was saved)"
           | [ "node"; id; s ] ->
               Hashtbl.replace node_settings (int_of_string id)
                 (setting_of_string s)
           | [ "unit"; u; s ] ->
               Hashtbl.replace unit_settings (unit_of_string u)
                 (setting_of_string s)
           | [ "hist"; id; d; weights ] ->
               let id = int_of_string id and d = int_of_string d in
               let hists =
                 match Hashtbl.find_opt node_histograms id with
                 | Some hs -> hs
                 | None ->
                     let hs =
                       Array.init Domain.count (fun _ ->
                           Histogram.create ~bins:Freq.num_steps)
                     in
                     Hashtbl.add node_histograms id hs;
                     hs
               in
               Array.iteri
                 (fun bin weight ->
                   if weight > 0.0 then Histogram.add hists.(d) ~bin ~weight)
                 (floats_of_string weights)
           | "seg" :: id :: base :: signatures ->
               let id = int_of_string id in
               let seg =
                 {
                   Path_model.base_ps = float_of_string base;
                   signatures = List.map floats_of_string signatures;
                 }
               in
               let pm =
                 match Hashtbl.find_opt node_paths id with
                 | Some pm -> pm
                 | None -> Path_model.empty
               in
               Hashtbl.replace node_paths id (Path_model.add_segment pm seg)
           | [] | [ "" ] -> ()
           | _ -> failwith ("Plan_io: bad line: " ^ line)
         done
       with End_of_file -> ());
      if not !fp_checked then failwith "Plan_io: missing tree fingerprint";
      {
        Plan.tree;
        context = !context;
        slowdown_pct = !slowdown;
        node_settings;
        unit_settings;
        node_histograms;
        node_paths;
      })
