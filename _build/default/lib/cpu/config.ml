type cache_geometry = {
  sets : int;
  ways : int;
  line_bytes : int;
  latency_cycles : int;
}

type clocking = Mcd | Single_clock of int

type t = {
  fetch_width : int;
  decode_depth : int;
  dispatch_width : int;
  retire_width : int;
  rob_size : int;
  int_phys_regs : int;
  fp_phys_regs : int;
  iq_int_size : int;
  iq_fp_size : int;
  lsq_size : int;
  int_alus : int;
  int_mults : int;
  fp_alus : int;
  fp_mults : int;
  int_alu_latency : int;
  int_mult_latency : int;
  fp_alu_latency : int;
  fp_mult_latency : int;
  issue_per_domain : int;
  mem_ports : int;
  l1i : cache_geometry;
  l1d : cache_geometry;
  l2 : cache_geometry;
  main_memory_ns : int;
  branch_penalty_cycles : int;
  clocking : clocking;
  jitter : bool;
  seed : int;
}

(* 64 KB, 2-way, 64 B lines -> 512 sets; 1 MB direct-mapped -> 16384 sets *)
let alpha21264_like =
  {
    fetch_width = 4;
    decode_depth = 2;
    dispatch_width = 4;
    retire_width = 11;
    rob_size = 80;
    int_phys_regs = 72;
    fp_phys_regs = 72;
    iq_int_size = 20;
    iq_fp_size = 15;
    lsq_size = 64;
    int_alus = 4;
    int_mults = 1;
    fp_alus = 2;
    fp_mults = 1;
    int_alu_latency = 1;
    int_mult_latency = 7;
    fp_alu_latency = 4;
    fp_mult_latency = 4;
    issue_per_domain = 6;
    mem_ports = 2;
    l1i = { sets = 512; ways = 2; line_bytes = 64; latency_cycles = 2 };
    l1d = { sets = 512; ways = 2; line_bytes = 64; latency_cycles = 2 };
    l2 = { sets = 16384; ways = 1; line_bytes = 64; latency_cycles = 12 };
    main_memory_ns = 80;
    branch_penalty_cycles = 7;
    clocking = Mcd;
    jitter = true;
    seed = 0x5eed;
  }

let single_clock ~mhz =
  { alpha21264_like with clocking = Single_clock mhz; jitter = false }

let cache_size_kb g = g.sets * g.ways * g.line_bytes / 1024

let pp_table fmt t =
  let row name value = Format.fprintf fmt "%-40s %s@," name value in
  Format.fprintf fmt "@[<v>";
  row "Branch predictor"
    "comb. of bimodal and 2-level PAg (1024/1024 hist 10, 4096 meta)";
  row "BTB" "4096 sets, 2-way";
  row "Branch mispredict penalty"
    (string_of_int t.branch_penalty_cycles ^ " cycles");
  row "Decode / Issue / Retire width"
    (Printf.sprintf "%d / %d / %d" t.dispatch_width t.issue_per_domain
       t.retire_width);
  row "L1 data cache"
    (Printf.sprintf "%dKB, %d-way set associative" (cache_size_kb t.l1d)
       t.l1d.ways);
  row "L1 instruction cache"
    (Printf.sprintf "%dKB, %d-way set associative" (cache_size_kb t.l1i)
       t.l1i.ways);
  row "L2 unified cache"
    (Printf.sprintf "%dMB, direct mapped" (cache_size_kb t.l2 / 1024));
  row "Cache access time"
    (Printf.sprintf "%d cycles L1, %d cycles L2" t.l1d.latency_cycles
       t.l2.latency_cycles);
  row "Integer ALUs"
    (Printf.sprintf "%d + %d mult/div unit" t.int_alus t.int_mults);
  row "Floating-point ALUs"
    (Printf.sprintf "%d + %d mult/div/sqrt unit" t.fp_alus t.fp_mults);
  row "Issue queue size"
    (Printf.sprintf "%d int, %d fp, %d ld/st" t.iq_int_size t.iq_fp_size
       t.lsq_size);
  row "Reorder buffer size" (string_of_int t.rob_size);
  row "Physical register file size"
    (Printf.sprintf "%d integer, %d floating-point" t.int_phys_regs
       t.fp_phys_regs);
  row "Domain frequency range"
    (Printf.sprintf "%d MHz - %d MHz" Mcd_domains.Freq.fmin_mhz
       Mcd_domains.Freq.fmax_mhz);
  row "Domain voltage range"
    (Printf.sprintf "%.2f V - %.2f V" Mcd_domains.Freq.vmin
       Mcd_domains.Freq.vmax);
  row "Frequency change speed"
    (Printf.sprintf "%.1f ns/MHz" Mcd_domains.Dvfs.slew_ns_per_mhz);
  row "Domain clock jitter" "110 ps bound, normally distributed";
  row "Inter-domain synchronization window" "30% of faster clock period";
  Format.fprintf fmt "@]"
