lib/cpu/fu.mli: Mcd_util
