(** Graceful degradation: never slower than a safe baseline, never a
    crash.

    {!guard} wraps a run-time reconfiguration policy
    ({!Mcd_cpu.Controller.t}) in a safety envelope:

    - every setting the policy emits is validated against the legal
      {!Mcd_domains.Freq} grid; off-grid targets are clamped with a
      logged diagnostic, settings corrupt beyond repair (wrong arity,
      out-of-range frequency) are suppressed entirely;
    - if the policy itself raises, the exception is swallowed, the
      machine is sent to the all-domains-full-speed baseline, and the
      policy is disabled for the rest of the run (global fallback);
    - a watchdog runs on the periodic hardware sample: when the
      programmed DVFS targets stop matching what the guard commanded
      (a lost or ignored reconfiguration-register write), the write is
      re-issued up to a bounded number of times before falling back;
      when a domain's operating point stops converging toward its
      target (a slew that never completes), the guard falls back
      immediately.

    After a global fallback the machine runs the MCD baseline — all
    domains at full speed — so a faulty plan or controller costs energy
    savings, never correctness and never unbounded slowdown. Every
    intervention is counted in {!counters}, mirroring
    {!Mcd_core.Editor.counters} for the fault-free path. *)

type counters = {
  mutable clamped : int;
      (** illegal frequency targets snapped to the legal grid *)
  mutable suppressed : int;
      (** settings too corrupt to repair, dropped before the register *)
  mutable reissues : int;
      (** reconfiguration writes repeated after the hardware ignored
          them *)
  mutable controller_faults : int;
      (** exceptions raised by the wrapped policy and swallowed *)
  mutable fallbacks : int;  (** global falls to the full-speed baseline *)
}

val counters : unit -> counters
(** All zero. *)

val fallen_back : counters -> bool
(** True once a global fallback has happened. *)

val interventions : counters -> int
(** Total degradation events of any kind. *)

val pp_counters : Format.formatter -> counters -> unit

val default_watchdog_interval_cycles : int
(** 8192 front-end cycles between watchdog samples when the wrapped
    policy does not sample on its own. *)

val default_max_reissues : int
(** 3: lost writes are retried this many consecutive samples before the
    guard concludes the hardware is deaf and falls back. *)

val stall_streak_limit : int
(** 4: consecutive watchdog samples over which a target gap must fail to
    shrink before a slew is declared frozen. *)

val guard :
  ?log:(Error.t -> unit) ->
  ?sink:Mcd_obs.Sink.t ->
  ?watchdog_interval_cycles:int ->
  ?max_reissues:int ->
  counters:counters ->
  Mcd_cpu.Controller.t ->
  Mcd_cpu.Controller.t
(** Wrap a policy in the safety envelope. [log] (default: drop)
    receives a diagnostic for every intervention; [sink] additionally
    records each intervention (clamp, suppression, reissue, fallback)
    as a [Degraded] trace event. The returned controller is
    single-use, like the one it wraps. *)
