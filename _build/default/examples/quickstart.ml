(* Quickstart: profile-based DVFS on a small custom program.

   Author a program in the IR, train the off-line analysis on a small
   input, edit the binary (build the run-time policy), and run the
   production input on the MCD core — comparing runtime and energy with
   the uncontrolled baseline.

     dune exec examples/quickstart.exe *)

module B = Mcd_isa.Build
module P = Mcd_isa.Program
module Config = Mcd_cpu.Config
module Pipeline = Mcd_cpu.Pipeline
module Metrics = Mcd_power.Metrics
module Context = Mcd_profiling.Context
module Analyze = Mcd_core.Analyze
module Editor = Mcd_core.Editor

(* A toy signal-processing program: an integer unpack phase feeds a
   floating-point filter phase, repeated per frame. *)
let program =
  B.program ~name:"quickstart" @@ fun b ->
  B.func b "unpack"
    [ B.loop b (P.Const 120) [ B.straight b ~length:95 ~frac_load:0.25 () ] ];
  B.func b "filter"
    [
      B.loop b (P.Const 110)
        [ B.straight b ~length:105 ~frac_fp_alu:0.3 ~frac_fp_mult:0.1 () ];
    ];
  B.func b "main"
    [ B.loop b (P.Scaled { base = 0; per_scale = 2 })
        [ B.call b "unpack"; B.call b "filter" ] ];
  "main"

let train = { P.input_name = "train"; scale = 3; divergence = 0.0; seed = 1 }
let production = { P.input_name = "prod"; scale = 10; divergence = 0.0; seed = 2 }

let () =
  let config = Config.alpha21264_like in
  let window = 120_000 in

  (* 1. the MCD baseline: all domains at 1 GHz *)
  let baseline =
    Pipeline.run ~config ~program ~input:production ~max_insts:window ()
  in
  Format.printf "baseline:      %a@." Metrics.pp baseline;

  (* 2. off-line analysis on the training input (7%% tolerated slowdown) *)
  let plan, stats =
    Analyze.analyze ~program ~train ~context:Context.lf ~slowdown_pct:7.0 ()
  in
  Format.printf
    "analysis:      %d long-running nodes, %d segments shaken (%d events)@."
    stats.Analyze.long_nodes stats.Analyze.segments_shaken
    stats.Analyze.events_shaken;
  Format.printf "%a@." Mcd_core.Plan.pp plan;

  (* 3. "edit the binary" and run production *)
  let edited = Editor.edit plan in
  let run =
    Pipeline.run ~controller:edited.Editor.controller ~config ~program
      ~input:production ~max_insts:window ()
  in
  Format.printf "profile-based: %a@." Metrics.pp run;

  Format.printf
    "@.result: %.1f%% slowdown buys %.1f%% energy savings (energy x delay %+.1f%%)@."
    (Metrics.perf_degradation_pct ~baseline run)
    (Metrics.energy_savings_pct ~baseline run)
    (Metrics.ed_improvement_pct ~baseline run)
