(** The full 19-benchmark suite (Table 2 order). *)

val all : Workload.t list

val by_name : string -> Workload.t
(** Raises [Not_found]. *)

val names : string list

val media : Workload.t list
val spec_int : Workload.t list
val spec_fp : Workload.t list
