(** Memoized execution of (benchmark x policy) simulations.

    Every figure compares policies against the MCD baseline on the
    reference input; the same runs feed several figures, so results are
    cached per benchmark. All analyses profile on the training input
    except the off-line oracle, which — exactly as in the paper — is the
    same pipeline given the production run as its "prior identical
    run". *)

type comparison = {
  degradation_pct : float;
  savings_pct : float;
  ed_improvement_pct : float;
}

val compare_runs :
  baseline:Mcd_power.Metrics.run -> Mcd_power.Metrics.run -> comparison

val set_jobs : int -> unit
(** Number of OCaml domains the experiment sweeps fan out over
    (default 1 = fully sequential; values below 1 are clamped to 1).
    Simulation results are deterministic per workload and
    {!map_workloads} preserves input order, so any jobs count produces
    byte-identical tables. *)

val get_jobs : unit -> int

val par_map : ('a -> 'b) -> 'a list -> 'b list
(** [Mcd_util.Par.map] at the configured jobs count, preserving input
    order. Memo tables are domain-local ([Domain.DLS]), so worker
    domains memoize within their share of a sweep and the caches stay
    race-free. *)

val map_workloads :
  (Mcd_workloads.Workload.t -> 'a) -> Mcd_workloads.Workload.t list -> 'a list
(** {!par_map} — named entry point for the common per-benchmark
    fan-out. *)

val default_slowdown_pct : float
(** 7.0, the paper's headline operating point. *)

(** {2 Simulation mode}

    Production runs (baseline, single-clock, offline, online, profile,
    {!plan_run}) execute either exactly or under
    {!Mcd_cpu.Sampler} phase sampling. The mode is process-wide
    configuration like {!set_jobs}: the bench/CLI drivers set it once.
    Sampled results are cached under distinct keys (a ["sim"] part on
    the disk key, a suffix on the memo keys), so the two modes never
    serve each other's numbers — and in [Exact] mode every key is
    byte-identical to the pre-sampling layout. Plan and oracle analyses
    are always computed exactly. So is the on-line policy
    ({!online_run}): its cycle-driven feedback controller cannot
    observe skipped instances and diverges under sampling, so it runs
    exactly in every mode and keeps mode-independent keys — a sampled
    pass reuses on-line results the exact pass already cached. *)

type sim_mode = Exact | Sampled of Mcd_cpu.Sampler.params

val set_sim_mode : sim_mode -> unit
val get_sim_mode : unit -> sim_mode

val profiler_walks : unit -> int
(** Number of full profiler walks ({!training_tree} calls — plan cache
    decodes, plan loads, coverage tables) performed by this process so
    far. Warm-path regression tests pin that a disk hit performs
    none. *)

val analysis_profile_insts : int
(** 400_000: the instruction window every profiler walk (plan analysis,
    plan loading, coverage tables, the CLI's tree command) uses to build
    call trees. A single shared constant — divergent copies are how
    saved plans stop matching their rebuilt trees. *)

val analysis_input :
  Mcd_workloads.Workload.t ->
  train:[ `Train | `Reference ] ->
  Mcd_isa.Program.input * int
(** The (input, window) pair an analysis over the given training
    selector sees. *)

val analysis_trace_insts :
  Mcd_workloads.Workload.t -> train:[ `Train | `Reference ] -> int
(** Instructions the timing trace behind a plan covers:
    [min window 120_000] of the selected input, exactly as
    {!plan_for} passes to the analyzer. *)

val training_tree :
  ?threshold:int ->
  Mcd_workloads.Workload.t ->
  context:Mcd_profiling.Context.t ->
  train:[ `Train | `Reference ] ->
  Mcd_profiling.Call_tree.t
(** Rebuild the profiling call tree for the selected training input with
    the shared window derivation — the tree {!load_plan} verifies plan
    fingerprints against. [threshold] (default
    {!Mcd_profiling.Call_tree.default_threshold}) is the long-running
    cutoff, overridden by threshold-ablation plans. *)

val baseline : Mcd_workloads.Workload.t -> Mcd_power.Metrics.run
(** MCD, all domains at full speed, reference input. Cached. *)

val config_baseline :
  ?config:Mcd_cpu.Config.t ->
  Mcd_workloads.Workload.t ->
  Mcd_power.Metrics.run
(** {!baseline} at an explicit processor configuration (default: the
    Table-1 core, where it shares {!baseline}'s cache objects). The
    narrow-core ablation's baseline segment. *)

val single_clock : Mcd_workloads.Workload.t -> mhz:int -> Mcd_power.Metrics.run
(** Globally synchronous run at [mhz]. Cached per frequency. *)

val plan_for :
  Mcd_workloads.Workload.t ->
  context:Mcd_profiling.Context.t ->
  train:[ `Train | `Reference ] ->
  Mcd_core.Plan.t
(** Off-line analysis at {!default_slowdown_pct}; cached per
    (benchmark, context, input). [`Reference] training is the off-line
    oracle. Equal to {!analyzed_plan} with every knob at its
    default. *)

val analyzed_plan :
  ?threshold_insts:int ->
  ?shaker_passes:int ->
  ?config:Mcd_cpu.Config.t ->
  ?slowdown_pct:float ->
  Mcd_workloads.Workload.t ->
  context:Mcd_profiling.Context.t ->
  train:[ `Train | `Reference ] ->
  Mcd_core.Plan.t
(** The analysis {e segment} of an experiment — profiling walk, traced
    training run, shaker, thresholding — disk-cached on its own key:
    workload x config x analysis knobs, with knob parts present only
    when overridden so the all-defaults key is byte-identical to
    {!plan_for}'s. An ablation that perturbs one knob recomputes this
    segment only; production runs are keyed separately
    ({!plan_run}). Always computed exactly, independent of the
    simulation mode. *)

val plan_run :
  ?config:Mcd_cpu.Config.t ->
  Mcd_workloads.Workload.t ->
  plan:Mcd_core.Plan.t ->
  Mcd_power.Metrics.run
(** The production {e segment}: edit per [plan] and run the reference
    input at [config]. Keyed by the plan's content digest, so ablation
    points whose knob did not change the plan share one cached run. *)

val load_plan :
  ?train:[ `Train | `Reference ] ->
  Mcd_workloads.Workload.t ->
  context:Mcd_profiling.Context.t ->
  path:string ->
  (Mcd_core.Plan_io.loaded, Mcd_robust.Error.t list) result
(** Load a previously shipped plan against a freshly rebuilt training
    tree ({!training_tree}; [train] defaults to [`Train]), reporting
    typed diagnostics rather than raising — the entry point the CLI and
    the robustness campaign use. Because the tree derivation is shared
    with {!plan_for}, a plan saved from [plan_for w ~context ~train]
    always round-trips warning-free. *)

val offline_run :
  ?slowdown_pct:float -> Mcd_workloads.Workload.t -> Mcd_power.Metrics.run
(** The interval-based off-line oracle ({!Mcd_core.Oracle}): analyse the
    production run with perfect knowledge, play the per-interval schedule
    back. Cached at every slowdown — the key carries the canonical
    ({!Mcd_cache.Key.float_param}) rendering of [slowdown_pct], so sweep
    points memoize instead of re-simulating. *)

type profiled_run = {
  run : Mcd_power.Metrics.run;
  plan : Mcd_core.Plan.t Lazy.t;
      (** Forcing the plan on a warm disk hit decodes the cached plan —
          a decode that rebuilds the training call tree (one full
          profiler walk). Consumers that only need [run] never pay
          it. *)
  counters : Mcd_core.Editor.counters;
}

val profile_run :
  ?slowdown_pct:float ->
  Mcd_workloads.Workload.t ->
  context:Mcd_profiling.Context.t ->
  train:[ `Train | `Reference ] ->
  profiled_run
(** Edit per the (possibly re-thresholded) plan and run the reference
    input. Cached at every slowdown, like {!offline_run}. *)

val policy_run :
  Mcd_control.Policy.t -> Mcd_workloads.Workload.t -> Mcd_power.Metrics.run
(** The generic policy entry point: build a fresh controller with the
    policy's [create], run the reference input, cache under
    {!policy_key}. Feedback policies are always simulated exactly
    (their cycle-driven loops diverge under phase sampling) and keyed
    mode-independently; feed-forward policies follow the global
    {!sim_mode}. *)

val policy_key :
  Mcd_control.Policy.t -> Mcd_workloads.Workload.t -> Mcd_cache.Key.t
(** The persistent-store key {!policy_run} caches under: the shared
    run-key layout with the policy's canonical
    {!Mcd_cache.Key.policy_fragment} identity, so two policies (or one
    policy at two parameter settings) can never collide. *)

val online_run :
  ?params:Mcd_control.Attack_decay.params -> Mcd_workloads.Workload.t ->
  Mcd_power.Metrics.run
(** {!policy_run} of {!Mcd_control.Attack_decay.policy} — the
    attack/decay run on the reference input. *)

val observed_run :
  ?policy:[ `Baseline | `Online | `Offline | `Profile ] ->
  ?context:Mcd_profiling.Context.t ->
  sink:Mcd_obs.Sink.t ->
  Mcd_workloads.Workload.t ->
  Mcd_power.Metrics.run
(** Run the reference input under the chosen policy (default [`Profile]
    in [context], default LF) with the observability [sink] attached:
    interval samples, reconfiguration/decision/sync events and
    frequency-residency histograms land in the sink, and the run's
    end-of-run aggregates are mirrored into its registry as [run.*]
    gauges. Never cached — a memoized result would leave the sink
    empty. The plan/oracle analyses behind [`Profile] and [`Offline]
    still come from the shared caches. *)

(** {2 Served requests}

    The experiment service ({!Mcd_serve}) expresses work as
    [(workload, policy, context, slowdown)] requests. *)

val request_key :
  Mcd_workloads.Workload.t ->
  policy:[ `Baseline | `Offline | `Online | `Profile ] ->
  context:Mcd_profiling.Context.t ->
  slowdown_pct:float ->
  Mcd_cache.Key.t
(** The content-addressed identity of a served request — {e exactly}
    the persistent-store key the underlying run is cached under, so
    serving a request warm reads the same object a one-shot CLI run
    wrote. Parameters a policy does not consume are normalized away
    (baseline/online ignore context and slowdown, offline ignores
    context), so equivalent requests always coalesce. *)

val run_request :
  Mcd_workloads.Workload.t ->
  policy:[ `Baseline | `Offline | `Online | `Profile ] ->
  context:Mcd_profiling.Context.t ->
  slowdown_pct:float ->
  Mcd_power.Metrics.run
(** Dispatch to the matching cached entry point ({!baseline},
    {!offline_run}, {!online_run}, {!profile_run} at [`Train]); the
    result is byte-identical (under {!Mcd_power.Metrics.encode}) to the
    corresponding one-shot call. *)

val global_dvs_run :
  Mcd_workloads.Workload.t -> target_runtime_ps:int -> Mcd_power.Metrics.run * int
(** Single-clock processor scaled to finish in approximately
    [target_runtime_ps] (the paper's "global" baseline): picks the
    slowest frequency step whose runtime still meets the target, or
    full speed when even that cannot. Returns the run and the chosen
    frequency. *)

val clear_caches : unit -> unit
(** Reset the calling domain's in-memory memo tables. The persistent
    store (if {!Mcd_cache.Store.default} is configured) is deliberately
    untouched: clearing memos then re-running is exactly the warm-cache
    path. *)
