lib/experiments/context_sense.mli: Mcd_profiling Mcd_workloads Runner
