lib/isa/program.mli:
