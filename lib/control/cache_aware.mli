(** Cache-aware DVFS policy (THEAS-spirited).

    The memory hierarchy is the signal: the per-interval L2 miss rate
    (misses per kilo-instruction, smoothed) classifies the current
    window as memory-bound or compute-bound. In memory-bound windows
    the integer/floating domains mostly wait on fills, so they step
    down — cycles they would have idled through become energy savings;
    in compute-bound windows they step back toward full speed. The
    memory domain itself scales with its own backlog but is floored at
    mid-grid while L1D misses are in flight, because a slow L2
    lengthens every miss. A per-domain queue-utilisation override keeps
    genuinely backlogged domains at full speed regardless of the miss
    signal. *)

type params = {
  interval_cycles : int;  (** sampling interval, front-end cycles *)
  l2_mpki_hi : float;  (** smoothed L2 MPKI above which the window is
                           memory-bound *)
  l2_mpki_lo : float;  (** below which it is compute-bound *)
  step_mhz : int;  (** frequency step per classified interval *)
  busy_util : float;  (** utilisation above which a compute domain is
                          pinned to full speed *)
  cooldown : int;  (** min sample intervals between writes per domain *)
}

val default_params : params

val controller :
  ?params:params -> ?sink:Mcd_obs.Sink.t -> unit -> Mcd_cpu.Controller.t
(** Fresh single-use controller; prefer {!policy}. *)

val params_id : params -> string list

val policy : ?label:string -> ?params:params -> unit -> Policy.t
(** Named ["cache-aware"]; feedback, so always simulated exactly. *)
