module Workload = Mcd_workloads.Workload
module Suite = Mcd_workloads.Suite
module Context = Mcd_profiling.Context
module Metrics = Mcd_power.Metrics
module Pipeline = Mcd_cpu.Pipeline
module Config = Mcd_cpu.Config
module Analyze = Mcd_core.Analyze
module Editor = Mcd_core.Editor
module Freq = Mcd_domains.Freq
module Table = Mcd_util.Table
module Stats = Mcd_util.Stats

let default_sync_workloads =
  List.map Suite.by_name
    [ "adpcm decode"; "gsm encode"; "jpeg compress"; "mcf"; "applu"; "equake" ]

let sync_penalty ?(workloads = default_sync_workloads) () =
  let header = [ "benchmark"; "perf penalty"; "energy penalty" ] in
  let results =
    Runner.map_workloads
      (fun (w : Workload.t) ->
        let mcd = Runner.baseline w in
        let single = Runner.single_clock w ~mhz:Freq.fmax_mhz in
        ( w.Workload.name,
          Metrics.perf_degradation_pct ~baseline:single mcd,
          -.Metrics.energy_savings_pct ~baseline:single mcd ))
      workloads
  in
  let body =
    List.map
      (fun (n, p, e) -> [ n; Table.fmt_pct p; Table.fmt_pct e ])
      results
  in
  let avg =
    [
      "AVERAGE";
      Table.fmt_pct (Stats.mean (List.map (fun (_, p, _) -> p) results));
      Table.fmt_pct (Stats.mean (List.map (fun (_, _, e) -> e) results));
    ]
  in
  "Ablation: inherent MCD synchronization penalty vs single-clock core\n"
  ^ Table.render ~header ~rows:(body @ [ avg ]) ()

let narrow_config =
  {
    Config.alpha21264_like with
    Config.fetch_width = 2;
    dispatch_width = 2;
    retire_width = 4;
    rob_size = 32;
    iq_int_size = 10;
    iq_fp_size = 8;
    lsq_size = 24;
    int_alus = 2;
    fp_alus = 1;
    issue_per_domain = 3;
  }

let default_narrow_workloads =
  List.map Suite.by_name [ "adpcm decode"; "gsm encode"; "jpeg compress"; "mcf" ]

(* The three knob ablations below are built from {!Runner}'s cached
   segments — {!Runner.analyzed_plan} for the analysis,
   {!Runner.plan_run} for the production run, {!Runner.config_baseline}
   for the comparison point — so a warm cache replays each point from
   disk, and a sweep that perturbs one knob recomputes only the segment
   that knob feeds. Points whose knob leaves the plan unchanged even
   share a single production-run object (plan_run keys on the plan's
   content digest). *)

let narrow_core ?(workloads = default_narrow_workloads) () =
  let header =
    [ "benchmark"; "core"; "degradation"; "energy savings"; "ExD" ]
  in
  let rows_for (w : Workload.t) config label =
    let baseline = Runner.config_baseline ~config w in
    let plan =
      Runner.analyzed_plan ~config w ~context:Context.lf ~train:`Train
    in
    let run = Runner.plan_run ~config w ~plan in
    let c = Runner.compare_runs ~baseline run in
    [
      w.Workload.name;
      label;
      Table.fmt_pct c.Runner.degradation_pct;
      Table.fmt_pct c.Runner.savings_pct;
      Table.fmt_pct c.Runner.ed_improvement_pct;
    ]
  in
  let body =
    List.concat
      (Runner.map_workloads
         (fun w ->
           [
             rows_for w Config.alpha21264_like "4-wide (Table 1)";
             rows_for w narrow_config "2-wide narrow";
           ])
         workloads)
  in
  "Ablation: profile-based DVFS on a narrow core (train and run on the \
   same microarchitecture)\n"
  ^ Table.render ~header ~rows:body ()

let shaker_passes ?(workload = Suite.by_name "gsm encode")
    ?(passes = [ 1; 2; 6; 24 ]) () =
  let w = workload in
  let baseline = Runner.baseline w in
  let header =
    [ "shaker passes"; "degradation"; "energy savings"; "ExD improvement" ]
  in
  let body =
    Runner.par_map
      (fun p ->
        let plan =
          Runner.analyzed_plan ~shaker_passes:p w ~context:Context.lf
            ~train:`Train
        in
        let run = Runner.plan_run w ~plan in
        let c = Runner.compare_runs ~baseline run in
        [
          string_of_int p;
          Table.fmt_pct c.Runner.degradation_pct;
          Table.fmt_pct c.Runner.savings_pct;
          Table.fmt_pct c.Runner.ed_improvement_pct;
        ])
      passes
  in
  Printf.sprintf
    "Ablation: shaker pass budget (benchmark: %s)\n%s" w.Workload.name
    (Table.render ~header ~rows:body ())

let long_threshold ?(workload = Suite.by_name "epic encode")
    ?(thresholds = [ 2_000; 10_000; 50_000 ]) () =
  let w = workload in
  let baseline = Runner.baseline w in
  let header =
    [
      "threshold"; "long nodes"; "reconfigs"; "degradation";
      "energy savings"; "ExD improvement";
    ]
  in
  let body =
    Runner.par_map
      (fun threshold ->
        let plan =
          Runner.analyzed_plan ~threshold_insts:threshold w
            ~context:Context.lf ~train:`Train
        in
        let run = Runner.plan_run w ~plan in
        let c = Runner.compare_runs ~baseline run in
        [
          string_of_int threshold;
          (* = Analyze stats.long_nodes: the analyzer reports
             [Call_tree.long_count] of the tree the plan carries *)
          string_of_int
            (Mcd_profiling.Call_tree.long_count plan.Mcd_core.Plan.tree);
          string_of_int run.Metrics.reconfigurations;
          Table.fmt_pct c.Runner.degradation_pct;
          Table.fmt_pct c.Runner.savings_pct;
          Table.fmt_pct c.Runner.ed_improvement_pct;
        ])
      thresholds
  in
  Printf.sprintf
    "Ablation: long-running threshold (benchmark: %s)\n%s" w.Workload.name
    (Table.render ~header ~rows:body ())
