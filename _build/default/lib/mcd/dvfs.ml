module Time = Mcd_util.Time

type dstate = {
  mutable current : float; (* MHz *)
  mutable target : float;
  mutable last : Time.t;
}

type t = { domains : dstate array }

let slew_ns_per_mhz = 73.3

let create () =
  {
    domains =
      Array.init Domain.count (fun _ ->
          {
            current = float_of_int Freq.fmax_mhz;
            target = float_of_int Freq.fmax_mhz;
            last = Time.zero;
          });
  }

(* Queries at times earlier than the last observation (e.g. projecting
   the arrival of a result produced in the past) answer with the current
   operating point rather than rewinding the ramp. *)
let advance ds ~now =
  if now > ds.last && ds.current <> ds.target then begin
    let elapsed_ns = Time.to_ns (now - ds.last) in
    let delta_mhz = elapsed_ns /. slew_ns_per_mhz in
    if ds.current < ds.target then
      ds.current <- Float.min ds.target (ds.current +. delta_mhz)
    else ds.current <- Float.max ds.target (ds.current -. delta_mhz)
  end;
  if now > ds.last then ds.last <- now

let set_target t domain ~now ~mhz =
  let ds = t.domains.(Domain.index domain) in
  advance ds ~now;
  ds.target <- float_of_int (Freq.clamp mhz)

let force t domain ~mhz =
  let ds = t.domains.(Domain.index domain) in
  let f = float_of_int (Freq.clamp mhz) in
  ds.current <- f;
  ds.target <- f

let target_mhz t domain =
  int_of_float t.domains.(Domain.index domain).target

let current_mhz t domain ~now =
  let ds = t.domains.(Domain.index domain) in
  advance ds ~now;
  ds.current

let voltage t domain ~now = Freq.voltage_f (current_mhz t domain ~now)
let energy_scale t domain ~now = Freq.energy_scale (current_mhz t domain ~now)

let in_transition t domain ~now =
  let ds = t.domains.(Domain.index domain) in
  advance ds ~now;
  ds.current <> ds.target
