(** Named-metric registry.

    Three instrument kinds, all with O(1) hot-path updates and no
    allocation after registration:

    - {b counters}: monotonically increasing integers;
    - {b gauges}: last-written floats;
    - {b histograms}: fixed-bin weighted histograms — [observe] adds an
      arbitrary float weight to one bin, so a frequency-residency
      histogram can weight each bin by cycles spent there.

    Registration is idempotent: asking for an existing name returns the
    same instrument. Asking for a name already registered as a different
    kind raises [Invalid_argument]. Iteration follows registration
    order, which keeps exports stable. *)

type t

type counter
type gauge
type histogram

type instrument =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

val create : unit -> t

val counter : t -> string -> counter
val gauge : t -> string -> gauge
val histogram : t -> string -> bins:int -> histogram
(** Raises [Invalid_argument] if [bins <= 0], or if [name] exists as a
    histogram with a different bin count. *)

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

val set : gauge -> float -> unit
val peek : gauge -> float

val observe : histogram -> bin:int -> weight:float -> unit
(** Adds [weight] to [bin]. Raises [Invalid_argument] on an
    out-of-range bin. *)

val bins : histogram -> int
val weights : histogram -> float array
(** A copy of the per-bin accumulated weights. *)

val name : instrument -> string
val iter : (instrument -> unit) -> t -> unit
(** Registration order. *)

val to_list : t -> instrument list
