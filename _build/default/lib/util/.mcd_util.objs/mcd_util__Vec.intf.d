lib/util/vec.mli:
