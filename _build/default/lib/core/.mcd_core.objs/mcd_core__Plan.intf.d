lib/core/plan.mli: Format Hashtbl Mcd_domains Mcd_profiling Mcd_util Path_model
