(** Primitive-event probe for off-line analysis.

    When a probe is attached, the pipeline reports every primitive event
    — temporally contiguous work performed within a single hardware unit
    on behalf of a single instruction — together with its data
    dependences, and every phase marker with its position in the dynamic
    instruction stream. The trace library assembles these into the
    dependence DAG the shaker algorithm consumes. *)

type stage =
  | Fetch_s  (** front-end: fetch + decode *)
  | Dispatch_s  (** front-end: rename + ROB/queue insertion *)
  | Execute_s  (** integer or floating-point execution *)
  | Mem_s  (** load/store unit + cache hierarchy *)
  | Retire_s  (** front-end: commit *)

type event = {
  seq : int;  (** dynamic instruction this event belongs to *)
  static_id : int;
  klass : Mcd_isa.Inst.iclass;
  stage : stage;
  domain : Mcd_domains.Domain.t;
  start : Mcd_util.Time.t;
  duration : Mcd_util.Time.t;
  dep_seqs : int array;
      (** producer instructions whose results this event consumes
          (data dependences); populated on [Execute_s] and [Mem_s] *)
}

type t = {
  on_event : event -> unit;
  on_marker : Mcd_isa.Walker.marker -> seq:int -> unit;
      (** [seq] is the number of dynamic instructions emitted before the
          marker, i.e. the stream position at which the phase boundary
          falls *)
}

val stage_name : stage -> string
